//! [`Ensemble`] — R replications of a scenario aggregated into
//! mean / standard deviation / 95% confidence intervals per
//! [`RunSummary`] field.
//!
//! Replication seeds are derived from the cell seed with the same
//! splitmix construction as cell seeds from the base seed, so the r-th
//! replication of a cell is a pure function of
//! `(base_seed, cell_index, r)` — adding replications never perturbs the
//! ones already run.

use crate::sweep::derive_seed;
use fpk_numerics::stats::RunningStats;
use fpk_numerics::{NumericsError, Result};
use fpk_sim::RunSummary;
use serde::{Deserialize, Serialize};

use crate::scenario::Scenario;

/// Mean / spread / confidence summary of one scalar across replications.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Stat {
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation (0 with < 2 samples).
    pub std_dev: f64,
    /// Half-width of the normal-approximation 95% CI for the mean.
    pub ci95: f64,
    /// Number of samples aggregated.
    pub n: u64,
}

impl Stat {
    /// Aggregate a slice of samples.
    #[must_use]
    pub fn from_samples(xs: &[f64]) -> Self {
        let mut rs = RunningStats::new();
        for &x in xs {
            rs.push(x);
        }
        Self::from_running(&rs)
    }

    /// Convert an accumulator.
    #[must_use]
    pub fn from_running(rs: &RunningStats) -> Self {
        Self {
            mean: rs.mean(),
            std_dev: rs.std_dev(),
            ci95: rs.ci95_halfwidth(),
            n: rs.count(),
        }
    }
}

/// Replication-aggregated statistics of one scenario cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnsembleStats {
    /// Number of replications aggregated.
    pub replications: usize,
    /// Jain fairness index of per-flow throughputs.
    pub jain: Stat,
    /// Time-averaged queue length.
    pub mean_queue: Stat,
    /// Bottleneck utilisation.
    pub utilization: Stat,
    /// Aggregate delivered throughput (sum over flows, packets/s).
    pub total_throughput: Stat,
    /// Total packets dropped across flows.
    pub total_dropped: Stat,
    /// Per-flow throughput statistics, in flow order.
    pub flow_throughput: Vec<Stat>,
    /// Per-flow control-signal standard deviation statistics (empty for
    /// tandem scenarios, which record no control trace).
    pub flow_ctl_std: Vec<Stat>,
    /// Queue-oscillation amplitude over the replications whose trace
    /// tail oscillated (`None` when no replication did).
    pub oscillation_amplitude: Option<Stat>,
}

/// Replication policy: how many seeds per cell.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ensemble {
    /// Number of replications R (seeds per cell); must be ≥ 1.
    pub replications: usize,
}

impl Ensemble {
    /// An ensemble of `replications` seeds per cell.
    ///
    /// # Errors
    /// [`NumericsError::InvalidParameter`] when `replications == 0`.
    pub fn new(replications: usize) -> Result<Self> {
        if replications == 0 {
            return Err(NumericsError::InvalidParameter {
                context: "Ensemble: need at least one replication",
            });
        }
        Ok(Self { replications })
    }

    /// Seed of replication `r` of a cell with seed `cell_seed`.
    #[must_use]
    pub fn replication_seed(cell_seed: u64, r: usize) -> u64 {
        derive_seed(cell_seed, r as u64)
    }

    /// Run all replications of `scenario` sequentially and aggregate.
    /// (The sweep runner parallelises across `(cell, replication)` jobs
    /// instead; this entry point serves single-cell callers.)
    ///
    /// # Errors
    /// Propagates the first failing replication.
    pub fn run(&self, scenario: &Scenario, cell_seed: u64) -> Result<EnsembleStats> {
        let summaries: Vec<RunSummary> = (0..self.replications)
            .map(|r| scenario.run_seeded(Self::replication_seed(cell_seed, r)))
            .collect::<Result<_>>()?;
        aggregate(&summaries)
    }
}

/// Aggregate replication summaries into per-field statistics.
///
/// # Errors
/// [`NumericsError::InvalidParameter`] when `summaries` is empty or the
/// replications disagree on the flow count.
pub fn aggregate(summaries: &[RunSummary]) -> Result<EnsembleStats> {
    let Some(first) = summaries.first() else {
        return Err(NumericsError::InvalidParameter {
            context: "aggregate: need at least one replication summary",
        });
    };
    let n_flows = first.throughputs.len();
    let n_ctl = first.ctl_std.len();
    if summaries
        .iter()
        .any(|s| s.throughputs.len() != n_flows || s.ctl_std.len() != n_ctl)
    {
        return Err(NumericsError::InvalidParameter {
            context: "aggregate: replications disagree on flow count",
        });
    }
    let collect = |f: &dyn Fn(&RunSummary) -> f64| -> Stat {
        Stat::from_samples(&summaries.iter().map(f).collect::<Vec<_>>())
    };
    let amplitudes: Vec<f64> = summaries
        .iter()
        .filter_map(|s| s.queue_oscillation.as_ref().map(|o| o.amplitude))
        .collect();
    Ok(EnsembleStats {
        replications: summaries.len(),
        jain: collect(&|s| s.jain),
        mean_queue: collect(&|s| s.mean_queue),
        utilization: collect(&|s| s.utilization),
        total_throughput: collect(&|s| s.throughputs.iter().sum()),
        total_dropped: collect(&|s| s.total_dropped as f64),
        flow_throughput: (0..n_flows)
            .map(|i| collect(&|s: &RunSummary| s.throughputs[i]))
            .collect(),
        flow_ctl_std: (0..n_ctl)
            .map(|i| collect(&|s: &RunSummary| s.ctl_std[i]))
            .collect(),
        oscillation_amplitude: if amplitudes.is_empty() {
            None
        } else {
            Some(Stat::from_samples(&amplitudes))
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpk_congestion::LinearExp;
    use fpk_sim::{Service, SimConfig, SourceSpec};

    fn scenario() -> Scenario {
        Scenario::new(
            "ens",
            SimConfig {
                mu: 50.0,
                service: Service::Exponential,
                buffer: None,
                t_end: 15.0,
                warmup: 3.0,
                sample_interval: 0.1,
                seed: 0,
            },
            vec![
                SourceSpec::Rate {
                    law: LinearExp::new(8.0, 0.5, 10.0),
                    lambda0: 20.0,
                    update_interval: 0.1,
                    prop_delay: 0.01,
                    poisson: true,
                };
                2
            ],
        )
    }

    #[test]
    fn rejects_zero_replications() {
        assert!(Ensemble::new(0).is_err());
    }

    #[test]
    fn replications_average_and_bound() {
        let ens = Ensemble::new(5).unwrap();
        let stats = ens.run(&scenario(), 99).unwrap();
        assert_eq!(stats.replications, 5);
        assert_eq!(stats.flow_throughput.len(), 2);
        assert_eq!(stats.utilization.n, 5);
        assert!(stats.utilization.mean > 0.0);
        assert!(stats.utilization.std_dev > 0.0, "distinct seeds must vary");
        assert!(stats.utilization.ci95 > 0.0);
        // The mean of per-flow means must reassemble the total.
        let flows: f64 = stats.flow_throughput.iter().map(|s| s.mean).sum();
        assert!((flows - stats.total_throughput.mean).abs() < 1e-9);
    }

    #[test]
    fn replication_prefix_is_stable() {
        // Growing R must not change the seeds of earlier replications.
        let s3: Vec<u64> = (0..3).map(|r| Ensemble::replication_seed(7, r)).collect();
        let s5: Vec<u64> = (0..5).map(|r| Ensemble::replication_seed(7, r)).collect();
        assert_eq!(s3, s5[..3]);
    }

    #[test]
    fn aggregate_rejects_bad_input() {
        assert!(aggregate(&[]).is_err());
        let ens = Ensemble::new(1).unwrap();
        let a = ens.run(&scenario(), 1).unwrap();
        let _ = a;
        let mut one = scenario().run_seeded(1).unwrap();
        let two = scenario().run_seeded(2).unwrap();
        one.throughputs.pop();
        assert!(aggregate(&[one, two]).is_err());
    }
}
