//! A [`Scenario`] is a named, self-contained description of one DES
//! experiment: simulator configuration, traffic sources, fault
//! injection, and (optionally) a tandem multi-hop topology instead of
//! the single bottleneck.
//!
//! Scenarios are the unit the sweep/ensemble machinery replicates: a
//! scenario plus a seed fully determines a run, and
//! [`Scenario::run_seeded`] reduces the run to the
//! [`RunSummary`](fpk_sim::RunSummary) the aggregation layer consumes.

use fpk_numerics::Result;
use fpk_sim::{
    run_tandem, run_with_faults, summarize, FaultConfig, RunSummary, SimConfig, SourceSpec,
    TandemConfig, TandemFlow, TandemResult,
};
use serde::{Deserialize, Serialize};

/// A multi-hop (tandem) topology bundled with its flows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TandemScenario {
    /// Per-hop configuration (service rates, horizon, seed).
    pub config: TandemConfig,
    /// Flows crossing contiguous hop spans.
    pub flows: Vec<TandemFlow>,
}

/// A named bundle of everything one simulation run needs except the
/// seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name; sweep cells append their coordinates.
    pub name: String,
    /// Single-bottleneck simulator configuration. The `seed` field is
    /// overwritten by [`Scenario::run_seeded`].
    pub config: SimConfig,
    /// Traffic sources feeding the bottleneck.
    pub sources: Vec<SourceSpec>,
    /// Fault injection (random loss before the queue).
    pub faults: FaultConfig,
    /// When set, the run uses the tandem engine instead of the single
    /// bottleneck; `config`/`sources`/`faults` are ignored.
    pub tandem: Option<TandemScenario>,
    /// Fraction of the queue trace analysed for oscillation in the
    /// summary (validated by `fpk_sim::metrics::summarize`).
    pub tail_fraction: f64,
}

impl Scenario {
    /// A single-bottleneck scenario with no faults and the default
    /// oscillation tail (the final half of the trace).
    #[must_use]
    pub fn new(name: impl Into<String>, config: SimConfig, sources: Vec<SourceSpec>) -> Self {
        Self {
            name: name.into(),
            config,
            sources,
            faults: FaultConfig::default(),
            tandem: None,
            tail_fraction: 0.5,
        }
    }

    /// Attach fault injection.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Replace the single bottleneck with a tandem topology.
    #[must_use]
    pub fn with_tandem(mut self, tandem: TandemScenario) -> Self {
        self.tandem = Some(tandem);
        self
    }

    /// Override the oscillation-analysis tail fraction.
    #[must_use]
    pub fn with_tail_fraction(mut self, tail_fraction: f64) -> Self {
        self.tail_fraction = tail_fraction;
        self
    }

    /// Run the scenario under the given seed and summarise it.
    ///
    /// # Errors
    /// Propagates simulator configuration/validation errors and summary
    /// (fairness/oscillation) errors.
    pub fn run_seeded(&self, seed: u64) -> Result<RunSummary> {
        if let Some(tandem) = &self.tandem {
            let mut cfg = tandem.config.clone();
            cfg.seed = seed;
            let out = run_tandem(&cfg, &tandem.flows)?;
            return tandem_summary(&cfg, &out);
        }
        let mut cfg = self.config.clone();
        cfg.seed = seed;
        let out = run_with_faults(&cfg, &self.sources, &self.faults)?;
        summarize(&out, self.tail_fraction)
    }
}

/// Reduce a tandem result to the shared [`RunSummary`] shape: jain over
/// end-to-end throughputs, hop-averaged queue, utilisation of aggregate
/// capacity. The tandem engine records no per-flow drop counters or
/// queue trace, so `total_dropped` is 0 and `queue_oscillation` absent.
fn tandem_summary(cfg: &TandemConfig, out: &TandemResult) -> Result<RunSummary> {
    let throughputs: Vec<f64> = out.flows.iter().map(|f| f.throughput).collect();
    let jain = fpk_congestion::fairness::jain_index(&throughputs)?;
    let total: f64 = throughputs.iter().sum();
    let capacity: f64 = cfg.mu.iter().sum();
    Ok(RunSummary {
        jain,
        mean_queue: fpk_numerics::stats::mean(&out.mean_queue),
        utilization: if capacity > 0.0 {
            total / capacity
        } else {
            0.0
        },
        queue_oscillation: None,
        total_dropped: 0,
        ctl_std: Vec::new(),
        throughputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpk_congestion::{LinearExp, WindowAimd};
    use fpk_sim::Service;

    fn base() -> Scenario {
        Scenario::new(
            "unit",
            SimConfig {
                mu: 50.0,
                service: Service::Exponential,
                buffer: None,
                t_end: 20.0,
                warmup: 4.0,
                sample_interval: 0.1,
                seed: 0,
            },
            vec![SourceSpec::Rate {
                law: LinearExp::new(8.0, 0.5, 10.0),
                lambda0: 20.0,
                update_interval: 0.1,
                prop_delay: 0.01,
                poisson: true,
            }],
        )
    }

    #[test]
    fn run_seeded_is_deterministic_and_seed_sensitive() {
        let sc = base();
        let a = sc.run_seeded(7).unwrap();
        let b = sc.run_seeded(7).unwrap();
        let c = sc.run_seeded(8).unwrap();
        assert_eq!(a.throughputs, b.throughputs);
        assert!(
            (a.throughputs[0] - c.throughputs[0]).abs() > 1e-12,
            "different seeds should perturb the throughput"
        );
    }

    #[test]
    fn seed_field_in_config_is_ignored() {
        let mut sc = base();
        sc.config.seed = 1;
        let a = sc.run_seeded(7).unwrap();
        sc.config.seed = 2;
        let b = sc.run_seeded(7).unwrap();
        assert_eq!(a.throughputs, b.throughputs);
    }

    #[test]
    fn tandem_scenario_runs_through_the_tandem_engine() {
        let flow = |first: usize, last: usize| TandemFlow {
            aimd: WindowAimd::new(1.0, 0.5, 0.04, 10.0),
            w0: 2.0,
            first_hop: first,
            last_hop: last,
        };
        let sc = base().with_tandem(TandemScenario {
            config: TandemConfig {
                mu: vec![60.0, 60.0],
                exponential_service: true,
                t_end: 30.0,
                warmup: 5.0,
                seed: 0,
            },
            flows: vec![flow(0, 1), flow(0, 0), flow(1, 1)],
        });
        let s = sc.run_seeded(3).unwrap();
        assert_eq!(s.throughputs.len(), 3);
        assert!(s.utilization > 0.0 && s.jain > 0.0);
        assert!(s.queue_oscillation.is_none());
    }
}
