//! A [`Scenario`] is a named, self-contained description of one DES
//! experiment: simulator configuration, traffic sources, fault
//! injection, and (optionally) a multi-hop [`Topology`] with per-source
//! [`Route`]s instead of the single bottleneck.
//!
//! Scenarios are the unit the sweep/ensemble machinery replicates: a
//! scenario plus a seed fully determines a run, and
//! [`Scenario::run_seeded`] reduces the run to the
//! [`RunSummary`] the aggregation layer consumes.
//! Every scenario — single-bottleneck or multi-hop — runs through the
//! one topology-first engine (`fpk_sim::run_network`), so sweeps over
//! topology axes (hop count, per-hop μ, route span) compose with every
//! existing axis.

use fpk_numerics::{NumericsError, Result};
use fpk_sim::{
    run_network_summary, run_network_workload_summary, FaultConfig, FlowSpec, NetArena, NetConfig,
    PacketBytes, QdiscKind, Route, RunSummary, SimConfig, SourceSpec, Topology, TraceMode,
    Workload,
};
use serde::{Deserialize, Serialize};

/// A named bundle of everything one simulation run needs except the
/// seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name; sweep cells append their coordinates.
    pub name: String,
    /// Run control (horizon, warm-up, sampling, and — when [`Self::topology`]
    /// is `None` — the single bottleneck's μ/service/buffer). The `seed`
    /// field is overwritten by [`Scenario::run_seeded`].
    pub config: SimConfig,
    /// Traffic sources feeding the network.
    pub sources: Vec<SourceSpec>,
    /// Fault injection applied at *every* hop (random loss before each
    /// queue). Overridden per hop by [`Self::hop_faults`] when set.
    pub faults: FaultConfig,
    /// When set, the run uses this multi-hop topology; `config`'s
    /// μ/service/buffer fields are ignored in favour of the per-link
    /// values.
    pub topology: Option<Topology>,
    /// Per-source routes, aligned with `sources`. `None` = every flow
    /// crosses the full topology (for the single bottleneck that is the
    /// classic one-hop path).
    pub routes: Option<Vec<Route>>,
    /// Per-hop fault overrides (one entry per link). `None` = replicate
    /// [`Self::faults`] at every hop.
    pub hop_faults: Option<Vec<FaultConfig>>,
    /// Finite-flow workload running alongside (or instead of) the
    /// static `sources`: open-loop arrivals, flow sizes, Zipf route
    /// popularity. When set, the summary's
    /// [`RunSummary::workload`] carries FCT/slowdown statistics.
    /// `sources` may be empty iff this is set.
    pub workload: Option<Workload>,
    /// Queue discipline at every hop ([`QdiscKind::Fifo`] keeps the
    /// historical per-flow marking policy; see `fpk_sim::qdisc`).
    pub qdisc: QdiscKind,
    /// Optional byte-granular packet sizing (`None` = unit packets).
    pub packet_bytes: Option<PacketBytes>,
    /// Fraction of the queue trace analysed for oscillation in the
    /// summary (validated by `fpk_sim::metrics`).
    pub tail_fraction: f64,
}

impl Scenario {
    /// A single-bottleneck scenario with no faults and the default
    /// oscillation tail (the final half of the trace).
    #[must_use]
    pub fn new(name: impl Into<String>, config: SimConfig, sources: Vec<SourceSpec>) -> Self {
        Self {
            name: name.into(),
            config,
            sources,
            faults: FaultConfig::default(),
            topology: None,
            routes: None,
            hop_faults: None,
            workload: None,
            qdisc: QdiscKind::Fifo,
            packet_bytes: None,
            tail_fraction: 0.5,
        }
    }

    /// Attach fault injection (applied at every hop unless
    /// [`Self::with_hop_faults`] overrides it).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Replace the single bottleneck with a multi-hop topology.
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Pin each source to a route (aligned with `sources`; without this
    /// every flow crosses the full topology).
    #[must_use]
    pub fn with_routes(mut self, routes: Vec<Route>) -> Self {
        self.routes = Some(routes);
        self
    }

    /// Per-hop fault injection (one [`FaultConfig`] per link).
    #[must_use]
    pub fn with_hop_faults(mut self, hop_faults: Vec<FaultConfig>) -> Self {
        self.hop_faults = Some(hop_faults);
        self
    }

    /// Attach a finite-flow workload (open-loop arrivals over the
    /// effective topology). With a workload, `sources` may be empty.
    #[must_use]
    pub fn with_workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Select the queue discipline every hop runs (default:
    /// [`QdiscKind::Fifo`], the historical per-flow marking).
    #[must_use]
    pub fn with_qdisc(mut self, qdisc: QdiscKind) -> Self {
        self.qdisc = qdisc;
        self
    }

    /// Enable byte-granular packets: every packet draws its size from
    /// the distribution and takes `bytes / ref_bytes` nominal service
    /// times.
    #[must_use]
    pub fn with_packet_bytes(mut self, packet_bytes: PacketBytes) -> Self {
        self.packet_bytes = Some(packet_bytes);
        self
    }

    /// Override the oscillation-analysis tail fraction.
    #[must_use]
    pub fn with_tail_fraction(mut self, tail_fraction: f64) -> Self {
        self.tail_fraction = tail_fraction;
        self
    }

    /// The topology this scenario runs on: the explicit one, or the
    /// 1-link topology `config` describes.
    #[must_use]
    pub fn effective_topology(&self) -> Topology {
        self.topology.clone().unwrap_or_else(|| {
            Topology::single(self.config.mu, self.config.service, self.config.buffer)
        })
    }

    /// Assemble the [`NetConfig`] + [`FlowSpec`] list for a run under
    /// `seed`.
    ///
    /// # Errors
    /// [`NumericsError::InvalidParameter`] when `routes` is set but its
    /// length disagrees with `sources`.
    pub fn network(&self, seed: u64) -> Result<(NetConfig, Vec<FlowSpec>)> {
        let topology = self.effective_topology();
        let k = topology.len();
        let faults = self
            .hop_faults
            .clone()
            .unwrap_or_else(|| vec![self.faults; k]);
        if let Some(routes) = &self.routes {
            if routes.len() != self.sources.len() {
                return Err(NumericsError::InvalidParameter {
                    context: "Scenario: routes must align one-to-one with sources",
                });
            }
        }
        let flows: Vec<FlowSpec> = self
            .sources
            .iter()
            .enumerate()
            .map(|(i, s)| FlowSpec {
                source: s.clone(),
                route: self
                    .routes
                    .as_ref()
                    .map_or_else(|| Route::full(k), |r| r[i]),
            })
            .collect();
        let net = NetConfig {
            topology,
            faults,
            t_end: self.config.t_end,
            warmup: self.config.warmup,
            sample_interval: self.config.sample_interval,
            seed,
            trace: TraceMode::Full,
            qdisc: self.qdisc,
            packet_bytes: self.packet_bytes,
        };
        Ok((net, flows))
    }

    /// Run the scenario under the given seed and summarise it.
    ///
    /// # Errors
    /// Propagates simulator configuration/validation errors and summary
    /// (fairness/oscillation) errors.
    pub fn run_seeded(&self, seed: u64) -> Result<RunSummary> {
        self.run_seeded_in(&mut NetArena::new(), seed)
    }

    /// [`Self::run_seeded`] against caller-owned scratch state: the run
    /// records its traces into the arena ([`TraceMode::Summary`]) and the
    /// summary is computed straight from them, so a replication loop
    /// holding one arena performs no per-run trace allocation. Output is
    /// bit-identical to [`Self::run_seeded`].
    ///
    /// # Errors
    /// Same contract as [`Self::run_seeded`].
    pub fn run_seeded_in(&self, arena: &mut NetArena, seed: u64) -> Result<RunSummary> {
        let (net, flows) = self.network(seed)?;
        match &self.workload {
            Some(w) => run_network_workload_summary(arena, &net, &flows, w, self.tail_fraction),
            None => run_network_summary(arena, &net, &flows, self.tail_fraction),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpk_congestion::{LinearExp, WindowAimd};
    use fpk_sim::{run_with_faults, summarize, Link, Service};

    fn base() -> Scenario {
        Scenario::new(
            "unit",
            SimConfig {
                mu: 50.0,
                service: Service::Exponential,
                buffer: None,
                t_end: 20.0,
                warmup: 4.0,
                sample_interval: 0.1,
                seed: 0,
            },
            vec![SourceSpec::Rate {
                law: LinearExp::new(8.0, 0.5, 10.0),
                lambda0: 20.0,
                update_interval: 0.1,
                prop_delay: 0.01,
                poisson: true,
            }],
        )
    }

    #[test]
    fn run_seeded_is_deterministic_and_seed_sensitive() {
        let sc = base();
        let a = sc.run_seeded(7).unwrap();
        let b = sc.run_seeded(7).unwrap();
        let c = sc.run_seeded(8).unwrap();
        assert_eq!(a.throughputs, b.throughputs);
        assert!(
            (a.throughputs[0] - c.throughputs[0]).abs() > 1e-12,
            "different seeds should perturb the throughput"
        );
    }

    #[test]
    fn seed_field_in_config_is_ignored() {
        let mut sc = base();
        sc.config.seed = 1;
        let a = sc.run_seeded(7).unwrap();
        sc.config.seed = 2;
        let b = sc.run_seeded(7).unwrap();
        assert_eq!(a.throughputs, b.throughputs);
    }

    #[test]
    fn single_bottleneck_summary_matches_legacy_path() {
        // The fold onto the topology engine must not move any number:
        // the scenario summary equals run_with_faults + summarize on the
        // same seed, field for field.
        let sc = base().with_faults(FaultConfig::Iid { loss_prob: 0.02 });
        let via_scenario = sc.run_seeded(11).unwrap();
        let mut cfg = sc.config.clone();
        cfg.seed = 11;
        let direct = run_with_faults(&cfg, &sc.sources, &sc.faults).unwrap();
        let via_legacy = summarize(&direct, sc.tail_fraction).unwrap();
        assert_eq!(via_scenario.throughputs, via_legacy.throughputs);
        assert_eq!(
            via_scenario.mean_queue.to_bits(),
            via_legacy.mean_queue.to_bits()
        );
        assert_eq!(
            via_scenario.utilization.to_bits(),
            via_legacy.utilization.to_bits()
        );
        assert_eq!(via_scenario.jain.to_bits(), via_legacy.jain.to_bits());
        assert_eq!(via_scenario.total_dropped, via_legacy.total_dropped);
        assert_eq!(via_scenario.ctl_std, via_legacy.ctl_std);
    }

    #[test]
    fn topology_scenario_runs_multi_hop() {
        let flow = |_: usize| SourceSpec::Window {
            aimd: WindowAimd::new(1.0, 0.5, 0.04, 10.0),
            w0: 2.0,
        };
        let sc = base()
            .with_topology(Topology::uniform(
                2,
                Link {
                    mu: 60.0,
                    service: Service::Exponential,
                    buffer: None,
                },
            ))
            .with_routes(vec![
                Route { first: 0, last: 1 },
                Route::single(0),
                Route::single(1),
            ]);
        let sc = Scenario {
            sources: vec![flow(0), flow(1), flow(2)],
            config: SimConfig {
                t_end: 30.0,
                warmup: 5.0,
                ..sc.config
            },
            ..sc
        };
        let s = sc.run_seeded(3).unwrap();
        assert_eq!(s.throughputs.len(), 3);
        assert!(s.utilization > 0.0 && s.jain > 0.0);
        // The unified engine records per-hop traces, so multi-hop
        // scenarios now get control-variability and oscillation data the
        // legacy tandem path never had.
        assert_eq!(s.ctl_std.len(), 3);
    }

    #[test]
    fn routes_default_to_full_path() {
        let sc = base().with_topology(Topology::uniform(
            3,
            Link {
                mu: 80.0,
                service: Service::Exponential,
                buffer: None,
            },
        ));
        let (net, flows) = sc.network(1).unwrap();
        assert_eq!(net.topology.len(), 3);
        assert_eq!(flows[0].route, Route { first: 0, last: 2 });
    }

    #[test]
    fn faults_replicate_across_hops_unless_overridden() {
        let sc = base()
            .with_topology(Topology::uniform(
                2,
                Link {
                    mu: 80.0,
                    service: Service::Exponential,
                    buffer: None,
                },
            ))
            .with_faults(FaultConfig::Iid { loss_prob: 0.1 });
        let (net, _) = sc.network(1).unwrap();
        assert_eq!(net.faults.len(), 2);
        assert!(net.faults.iter().all(|f| *f == FaultConfig::iid(0.1)));

        let sc = sc.with_hop_faults(vec![
            FaultConfig::Iid { loss_prob: 0.0 },
            FaultConfig::Iid { loss_prob: 0.2 },
        ]);
        let (net, _) = sc.network(1).unwrap();
        assert_eq!(net.faults[0], FaultConfig::iid(0.0));
        assert_eq!(net.faults[1], FaultConfig::iid(0.2));
    }

    #[test]
    fn misaligned_routes_rejected() {
        let sc = base().with_routes(vec![Route::single(0), Route::single(0)]);
        assert!(sc.run_seeded(1).is_err());
    }
}
