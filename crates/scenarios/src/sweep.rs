//! [`Sweep`] — expand parameter axes into a cartesian grid of seeded
//! [`Scenario`] cells.
//!
//! Each axis pairs a list of values with an *apply* function that
//! imprints the value onto a scenario; the sweep takes the cartesian
//! product of all axes (last axis fastest, row-major) and derives one
//! deterministic seed per cell splitmix-style from
//! `(base_seed, cell_index)`. Cell seeds depend only on the base seed
//! and the cell's linear index, so reordering the execution (or running
//! it on a different thread count) cannot change any result.

use crate::scenario::Scenario;
use std::fmt;
use std::sync::Arc;

/// The function an [`Axis`] uses to imprint a value onto a scenario.
pub type ApplyFn = Arc<dyn Fn(&mut Scenario, f64) + Send + Sync>;

/// One sweep dimension: a named list of values plus how to apply them.
#[derive(Clone)]
pub struct Axis {
    /// Axis name (appears in cell names and the sweep report).
    pub name: String,
    /// The grid points along this axis.
    pub values: Vec<f64>,
    apply: ApplyFn,
}

impl fmt::Debug for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Axis")
            .field("name", &self.name)
            .field("values", &self.values)
            .finish_non_exhaustive()
    }
}

impl Axis {
    /// An axis with a custom apply function.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        values: Vec<f64>,
        apply: impl Fn(&mut Scenario, f64) + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            values,
            apply: Arc::new(apply),
        }
    }

    /// An axis that only labels cells — the value is consumed by a
    /// custom per-cell evaluator, not by the scenario itself (e.g. a
    /// fluid-model sweep that ignores the DES bundle).
    #[must_use]
    pub fn label_only(name: impl Into<String>, values: Vec<f64>) -> Self {
        Self::new(name, values, |_, _| {})
    }

    /// Sweep the bottleneck service rate μ (on a topology scenario,
    /// every link's μ).
    #[must_use]
    pub fn mu(values: Vec<f64>) -> Self {
        Self::new("mu", values, |sc, v| {
            sc.config.mu = v;
            if let Some(topology) = &mut sc.topology {
                for link in &mut topology.links {
                    link.mu = v;
                }
            }
        })
    }

    /// Sweep the μ of one specific hop of a topology scenario (the index
    /// is clamped to the last link; single-bottleneck scenarios treat
    /// hop 0 as `config.mu`).
    #[must_use]
    pub fn hop_mu(hop: usize, values: Vec<f64>) -> Self {
        Self::new(format!("mu{hop}"), values, move |sc, v| {
            if let Some(topology) = &mut sc.topology {
                let last = topology.len().saturating_sub(1);
                topology.links[hop.min(last)].mu = v;
            } else {
                sc.config.mu = v;
            }
        })
    }

    /// Sweep the hop count: resize the topology to round(v) copies of
    /// its first link (or of the single bottleneck `config` describes).
    /// The default all-hops routing (`routes: None`) adapts by itself.
    /// Explicit routes that spanned the whole previous *multi-hop*
    /// topology stretch to span the new one; all other explicit routes
    /// (including every route on a 1-link base, where "full span" and
    /// "pinned to hop 0" are indistinguishable) stay put, clamped into
    /// range. Explicit per-hop faults are resized too: surviving hops
    /// keep their entries, new hops get the scenario's default
    /// `faults`.
    #[must_use]
    pub fn hop_count(values: Vec<f64>) -> Self {
        Self::new("hops", values, |sc, v| {
            let k = (v.round().max(1.0)) as usize;
            let old = sc.effective_topology();
            let old_k = old.len();
            sc.topology = Some(fpk_sim::Topology::uniform(k, old.links[0]));
            if let Some(routes) = &mut sc.routes {
                for r in routes {
                    if old_k > 1 && r.first == 0 && r.last == old_k - 1 {
                        *r = fpk_sim::Route::full(k);
                    } else {
                        r.first = r.first.min(k - 1);
                        r.last = r.last.min(k - 1);
                    }
                }
            }
            let default_faults = sc.faults;
            if let Some(hop_faults) = &mut sc.hop_faults {
                hop_faults.resize(k, default_faults);
            }
        })
    }

    /// Sweep the route span: every flow crosses hops `0..round(v)`
    /// (clamped to the topology).
    #[must_use]
    pub fn route_span(values: Vec<f64>) -> Self {
        Self::new("span", values, |sc, v| {
            let k = sc.effective_topology().len();
            let span = (v.round().max(1.0) as usize).min(k);
            sc.routes = Some(vec![fpk_sim::Route::full(span); sc.sources.len()]);
        })
    }

    /// Sweep the buffer limit; non-finite values mean "infinite".
    #[must_use]
    pub fn buffer(values: Vec<f64>) -> Self {
        Self::new("buffer", values, |sc, v| {
            sc.config.buffer = if v.is_finite() { Some(v as u64) } else { None };
        })
    }

    /// Sweep the fault-injection loss probability (i.i.d. loss on
    /// every hop).
    #[must_use]
    pub fn loss_prob(values: Vec<f64>) -> Self {
        Self::new("loss_prob", values, |sc, v| {
            sc.faults = fpk_sim::FaultConfig::Iid { loss_prob: v };
        })
    }

    /// Sweep the fault *model* by coded value: `round(v)` selects
    /// 0 = fault-free, 1 = i.i.d. 2% loss, 2 = Gilbert–Elliott bursts
    /// (good↔bad at 0.5/2 Hz, 0%/10% loss — same 2% long-run average
    /// loss as code 1, concentrated in bursts), 3 = link flapping
    /// (down 0.1 Hz, up 1 Hz — ≈9% downtime), ≥ 4 = periodic capacity
    /// degradation (μ halved every 5 s). For other parameterisations
    /// use [`Axis::new`] with a custom apply that sets
    /// [`fpk_sim::FaultConfig`] directly.
    #[must_use]
    pub fn fault_model(values: Vec<f64>) -> Self {
        Self::new("fault", values, |sc, v| {
            sc.faults = match v.round() as i64 {
                0 => fpk_sim::FaultConfig::Iid { loss_prob: 0.0 },
                1 => fpk_sim::FaultConfig::Iid { loss_prob: 0.02 },
                2 => fpk_sim::FaultConfig::GilbertElliott {
                    p_gb: 0.5,
                    p_bg: 2.0,
                    loss_good: 0.0,
                    loss_bad: 0.10,
                },
                3 => fpk_sim::FaultConfig::LinkFlap {
                    up_rate: 1.0,
                    down_rate: 0.1,
                },
                _ => fpk_sim::FaultConfig::Degrade {
                    factor: 0.5,
                    period: 5.0,
                },
            };
        })
    }

    /// Sweep the workload's RTO retransmission policy by retry budget:
    /// `round(v)` = 0 removes the policy (drops are final), n ≥ 1 sets
    /// an [`fpk_sim::RtoPolicy`] with `rto_base` 0.05 s, backoff ×2,
    /// and `max_retries = n`. No-op on scenarios without a workload.
    #[must_use]
    pub fn rto_policy(values: Vec<f64>) -> Self {
        Self::new("rto", values, |sc, v| {
            if let Some(w) = &mut sc.workload {
                let n = v.round().max(0.0) as u32;
                w.rto = (n >= 1).then_some(fpk_sim::RtoPolicy {
                    rto_base: 0.05,
                    backoff: 2.0,
                    max_retries: n,
                });
            }
        })
    }

    /// Sweep the initial window `w0` of every window/DECbit source.
    #[must_use]
    pub fn w0(values: Vec<f64>) -> Self {
        Self::new("w0", values, |sc, v| {
            for src in &mut sc.sources {
                match src {
                    fpk_sim::SourceSpec::Window { w0, .. }
                    | fpk_sim::SourceSpec::Decbit { w0, .. } => *w0 = v,
                    fpk_sim::SourceSpec::Rate { .. } | fpk_sim::SourceSpec::OnOff { .. } => {}
                }
            }
        })
    }

    /// Sweep the one-way propagation delay of every source (window and
    /// DECbit sources store it as an RTT, i.e. `2 × delay`).
    #[must_use]
    pub fn delay(values: Vec<f64>) -> Self {
        Self::new("delay", values, |sc, v| {
            for src in &mut sc.sources {
                match src {
                    fpk_sim::SourceSpec::Rate { prop_delay, .. }
                    | fpk_sim::SourceSpec::OnOff { prop_delay, .. } => *prop_delay = v,
                    fpk_sim::SourceSpec::Window { aimd, .. } => aimd.rtt = 2.0 * v,
                    fpk_sim::SourceSpec::Decbit { rtt, .. } => *rtt = 2.0 * v,
                }
            }
        })
    }

    /// Sweep the number of flows by replicating the scenario's first
    /// source (values are rounded and clamped to ≥ 1).
    #[must_use]
    pub fn flow_count(values: Vec<f64>) -> Self {
        Self::new("flows", values, |sc, v| {
            let n = (v.round().max(1.0)) as usize;
            let proto = sc.sources.first().cloned();
            if let Some(proto) = proto {
                sc.sources = vec![proto; n];
            }
        })
    }

    /// Sweep the offered load ρ of the scenario's workload: the flow
    /// arrival rate is set to `ρ · μ_min / E[size]`, where `μ_min` is
    /// the slowest link of the effective topology (the bottleneck) and
    /// `E[size]` the mean flow size — so `ρ = 1` offers exactly the
    /// bottleneck capacity in workload packets. No-op on scenarios
    /// without a workload.
    #[must_use]
    pub fn load_rho(values: Vec<f64>) -> Self {
        Self::new("rho", values, |sc, v| {
            let mu_min = sc
                .effective_topology()
                .links
                .iter()
                .map(|l| l.mu)
                .fold(f64::INFINITY, f64::min);
            if let Some(w) = &mut sc.workload {
                w.arrivals.set_rate(v * mu_min / w.sizes.mean());
            }
        })
    }

    /// Sweep the workload's flow-size distribution *shape* at constant
    /// mean: `round(v)` selects 0 = deterministic, 1 = exponential,
    /// ≥ 2 = heavy-tailed bounded Pareto (α = 0.6, `max` bisected to
    /// hit the mean — mice and elephants). The mean packet count of the
    /// base distribution is preserved, so the offered load does not
    /// move along this axis. No-op on scenarios without a workload.
    #[must_use]
    pub fn flow_size_dist(values: Vec<f64>) -> Self {
        Self::new("sizedist", values, |sc, v| {
            if let Some(w) = &mut sc.workload {
                let mean = w.sizes.mean();
                w.sizes = match v.round() as i64 {
                    0 => fpk_sim::FlowSizeDist::Deterministic {
                        packets: mean.round().max(1.0) as u64,
                    },
                    1 => fpk_sim::FlowSizeDist::Exponential { mean },
                    _ => fpk_sim::FlowSizeDist::bounded_pareto_with_mean(1.0, 0.6, mean)
                        .unwrap_or(fpk_sim::FlowSizeDist::Exponential { mean }),
                };
            }
        })
    }

    /// Sweep the queue discipline by coded value: `round(v)` selects
    /// 0 = FIFO (the per-flow marking baseline), 1 = instantaneous
    /// threshold marking (K = 5), 2 = DECbit-averaged marking
    /// (K = 2.5), ≥ 3 = RED (min 2.5, max 10, `max_p` 1, EWMA weight
    /// 0.25) — the canonical parameterisations the marking-comparison
    /// figure sweeps. The RED weight is deliberately fast: at these
    /// shallow per-hop queues a slow EWMA lags the window sawtooth and
    /// lets the buffer oscillate past the FIFO baseline. For other
    /// parameters, use [`Axis::new`] with a custom apply that builds
    /// the [`fpk_sim::QdiscKind`] directly.
    #[must_use]
    pub fn qdisc(values: Vec<f64>) -> Self {
        Self::new("qdisc", values, |sc, v| {
            sc.qdisc = match v.round() as i64 {
                0 => fpk_sim::QdiscKind::Fifo,
                1 => fpk_sim::QdiscKind::ThresholdMark { threshold: 5.0 },
                2 => fpk_sim::QdiscKind::AveragedMark { threshold: 2.5 },
                _ => fpk_sim::QdiscKind::RedMark {
                    min_th: 2.5,
                    max_th: 10.0,
                    max_p: 1.0,
                    weight: 0.25,
                },
            };
        })
    }

    /// Sweep the packet size in bytes: every packet is exactly
    /// `round(v)` bytes against the scenario's existing byte reference
    /// (or a 1000-byte reference when the base scenario has no
    /// [`fpk_sim::PacketBytes`] yet), so the per-packet service factor
    /// is `round(v) / ref_bytes`. Values must round to ≥ 1.
    #[must_use]
    pub fn packet_bytes(values: Vec<f64>) -> Self {
        Self::new("bytes", values, |sc, v| {
            let packets = v.round().max(1.0) as u64;
            let ref_bytes = sc
                .packet_bytes
                .map_or(fpk_sim::Bytes(1000.0), |pb| pb.ref_bytes);
            sc.packet_bytes = Some(fpk_sim::PacketBytes {
                dist: fpk_sim::FlowSizeDist::Deterministic { packets },
                ref_bytes,
            });
        })
    }

    /// Sweep the workload's arrival burstiness: `v ≤ 1` keeps Poisson
    /// arrivals (the memoryless baseline), `v > 1` switches to Pareto
    /// interarrivals with tail exponent α = v at the same mean rate —
    /// smaller α (closer to 1) is burstier, with infinite gap variance
    /// for α ≤ 2. The tbl11 traffic-variability story at flow
    /// granularity. No-op on scenarios without a workload.
    #[must_use]
    pub fn arrival_burstiness(values: Vec<f64>) -> Self {
        Self::new("burst", values, |sc, v| {
            if let Some(w) = &mut sc.workload {
                let rate = w.arrivals.rate();
                w.arrivals = if v > 1.0 {
                    fpk_sim::ArrivalProcess::Pareto { rate, alpha: v }
                } else {
                    fpk_sim::ArrivalProcess::Poisson { rate }
                };
            }
        })
    }
}

/// One cell of the expanded grid.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Linear (row-major) index into the grid.
    pub index: usize,
    /// The value of each axis at this cell, in axis order.
    pub coords: Vec<f64>,
    /// Deterministic seed derived from `(base_seed, index)`.
    pub seed: u64,
    /// The base scenario with every axis value applied.
    pub scenario: Scenario,
}

/// A cartesian parameter sweep over a base scenario.
#[derive(Debug, Clone)]
pub struct Sweep {
    base: Scenario,
    axes: Vec<Axis>,
    base_seed: u64,
    crn: bool,
}

impl Sweep {
    /// Start a sweep from a base scenario and a base seed.
    #[must_use]
    pub fn new(base: Scenario, base_seed: u64) -> Self {
        Self {
            base,
            axes: Vec::new(),
            base_seed,
            crn: false,
        }
    }

    /// Append an axis (the last-added axis varies fastest).
    #[must_use]
    pub fn axis(mut self, axis: Axis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Pair the grid with common random numbers: every cell gets the
    /// *same* cell seed (cell 0's), so replication `r` runs on an
    /// identical seed in every cell and cross-cell differences become
    /// paired comparisons — the shared arrival/service noise cancels,
    /// shrinking the variance of A−B contrasts between control laws
    /// (see [`crate::ensemble::paired_diff`]). Default off: independent
    /// per-cell streams.
    #[must_use]
    pub fn with_common_random_numbers(mut self) -> Self {
        self.crn = true;
        self
    }

    /// True when cells share one seed stream (CRN pairing).
    #[must_use]
    pub fn common_random_numbers(&self) -> bool {
        self.crn
    }

    /// Name of the base scenario.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.base.name
    }

    /// The base seed cell seeds are derived from.
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The axes in declaration order.
    #[must_use]
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Number of grid cells (product of axis lengths; 1 with no axes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// True when any axis is empty (the grid has no cells).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand the cartesian grid into seeded cells.
    #[must_use]
    pub fn cells(&self) -> Vec<Cell> {
        let total = self.len();
        let mut cells = Vec::with_capacity(total);
        for index in 0..total {
            // Decode the row-major index into per-axis positions (last
            // axis fastest).
            let mut rem = index;
            let mut positions = vec![0usize; self.axes.len()];
            for (k, axis) in self.axes.iter().enumerate().rev() {
                positions[k] = rem % axis.values.len();
                rem /= axis.values.len();
            }
            let mut scenario = self.base.clone();
            let mut coords = Vec::with_capacity(self.axes.len());
            let mut label = String::new();
            for (axis, &pos) in self.axes.iter().zip(&positions) {
                let v = axis.values[pos];
                (axis.apply)(&mut scenario, v);
                coords.push(v);
                if !label.is_empty() {
                    label.push(',');
                }
                label.push_str(&format!("{}={v}", axis.name));
            }
            if !label.is_empty() {
                scenario.name = format!("{}[{label}]", self.base.name);
            }
            cells.push(Cell {
                index,
                coords,
                seed: derive_seed(self.base_seed, if self.crn { 0 } else { index as u64 }),
                scenario,
            });
        }
        cells
    }
}

/// Derive a stream seed from `(base, index)` with the splitmix64
/// finaliser — the same construction `montecarlo.rs` relies on for
/// reproducibility, but with full avalanche so neighbouring cells do not
/// get correlated `StdRng` streams.
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        ^ index
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpk_congestion::LinearExp;
    use fpk_sim::{Service, SimConfig, SourceSpec};

    fn base() -> Scenario {
        Scenario::new(
            "grid",
            SimConfig {
                mu: 50.0,
                service: Service::Exponential,
                buffer: None,
                t_end: 10.0,
                warmup: 2.0,
                sample_interval: 0.1,
                seed: 0,
            },
            vec![SourceSpec::Rate {
                law: LinearExp::new(8.0, 0.5, 10.0),
                lambda0: 20.0,
                update_interval: 0.1,
                prop_delay: 0.01,
                poisson: true,
            }],
        )
    }

    #[test]
    fn cartesian_expansion_row_major() {
        let sweep = Sweep::new(base(), 42)
            .axis(Axis::mu(vec![10.0, 20.0]))
            .axis(Axis::flow_count(vec![1.0, 2.0, 4.0]));
        assert_eq!(sweep.len(), 6);
        let cells = sweep.cells();
        assert_eq!(cells.len(), 6);
        // Last axis fastest: (10,1) (10,2) (10,4) (20,1) (20,2) (20,4).
        assert_eq!(cells[0].coords, vec![10.0, 1.0]);
        assert_eq!(cells[2].coords, vec![10.0, 4.0]);
        assert_eq!(cells[3].coords, vec![20.0, 1.0]);
        assert_eq!(cells[2].scenario.sources.len(), 4);
        assert_eq!(cells[3].scenario.config.mu, 20.0);
        assert_eq!(cells[4].scenario.name, "grid[mu=20,flows=2]");
    }

    #[test]
    fn seeds_deterministic_and_distinct() {
        let sweep = Sweep::new(base(), 42).axis(Axis::mu(vec![10.0, 20.0, 30.0]));
        let a = sweep.cells();
        let b = sweep.cells();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
        }
        let mut seeds: Vec<u64> = a.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 3, "cell seeds must be pairwise distinct");
        // Different base seed → different streams.
        let c = Sweep::new(base(), 43)
            .axis(Axis::mu(vec![10.0, 20.0, 30.0]))
            .cells();
        assert_ne!(a[0].seed, c[0].seed);
    }

    #[test]
    fn builtin_axes_apply() {
        let sweep = Sweep::new(base(), 1)
            .axis(Axis::buffer(vec![8.0, f64::INFINITY]))
            .axis(Axis::loss_prob(vec![0.0, 0.1]))
            .axis(Axis::delay(vec![0.05]));
        let cells = sweep.cells();
        // 2 × 2 × 1 grid, delay fastest: (8,0) (8,0.1) (∞,0) (∞,0.1).
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].scenario.config.buffer, Some(8));
        assert_eq!(cells[1].scenario.config.buffer, Some(8));
        assert_eq!(cells[2].scenario.config.buffer, None);
        assert_eq!(cells[3].scenario.config.buffer, None);
        assert_eq!(cells[1].scenario.faults, fpk_sim::FaultConfig::iid(0.1));
        assert_eq!(cells[0].scenario.faults, fpk_sim::FaultConfig::iid(0.0));
        match &cells[0].scenario.sources[0] {
            SourceSpec::Rate { prop_delay, .. } => assert!((prop_delay - 0.05).abs() < 1e-15),
            _ => panic!("unexpected source kind"),
        }
    }

    #[test]
    fn topology_axes_apply() {
        let sweep = Sweep::new(base(), 1)
            .axis(Axis::hop_count(vec![3.0]))
            .axis(Axis::hop_mu(1, vec![25.0]))
            .axis(Axis::route_span(vec![2.0]));
        let cells = sweep.cells();
        assert_eq!(cells.len(), 1);
        let sc = &cells[0].scenario;
        let topology = sc.topology.as_ref().expect("hop_count builds a topology");
        assert_eq!(topology.len(), 3);
        // The replicated link inherits the single-bottleneck parameters.
        assert_eq!(topology.links[0].mu, 50.0);
        assert_eq!(topology.links[1].mu, 25.0);
        assert_eq!(
            sc.routes.as_ref().unwrap()[0],
            fpk_sim::Route { first: 0, last: 1 }
        );
        assert_eq!(sc.name, "grid[hops=3,mu1=25,span=2]");
    }

    #[test]
    fn hop_count_stretches_full_span_routes() {
        let mut base = base();
        base.sources.push(base.sources[0].clone());
        let base = base
            .with_topology(fpk_sim::Topology::uniform(
                2,
                fpk_sim::Link {
                    mu: 40.0,
                    service: Service::Exponential,
                    buffer: None,
                },
            ))
            .with_routes(vec![
                fpk_sim::Route { first: 0, last: 1 }, // spans all of the old 2 hops
                fpk_sim::Route::single(1),
            ]);
        let cells = Sweep::new(base, 9).axis(Axis::hop_count(vec![4.0])).cells();
        let routes = cells[0].scenario.routes.as_ref().unwrap();
        assert_eq!(routes[0], fpk_sim::Route { first: 0, last: 3 }, "stretched");
        assert_eq!(routes[1], fpk_sim::Route::single(1), "clamped in place");
    }

    #[test]
    fn hop_count_resizes_hop_faults_with_the_topology() {
        // A parking-lot scenario with per-hop faults swept over hop
        // count must stay runnable: surviving hops keep their fault
        // entries, new hops inherit the scenario default.
        let base = base()
            .with_topology(fpk_sim::Topology::uniform(
                3,
                fpk_sim::Link {
                    mu: 60.0,
                    service: Service::Exponential,
                    buffer: None,
                },
            ))
            .with_faults(fpk_sim::FaultConfig::Iid { loss_prob: 0.01 })
            .with_hop_faults(vec![
                fpk_sim::FaultConfig::Iid { loss_prob: 0.0 },
                fpk_sim::FaultConfig::Iid { loss_prob: 0.2 },
                fpk_sim::FaultConfig::Iid { loss_prob: 0.0 },
            ]);
        for (k, expect) in [(2.0, vec![0.0, 0.2]), (4.0, vec![0.0, 0.2, 0.0, 0.01])] {
            let cells = Sweep::new(base.clone(), 5)
                .axis(Axis::hop_count(vec![k]))
                .cells();
            let sc = &cells[0].scenario;
            let probs: Vec<fpk_sim::FaultConfig> = sc.hop_faults.as_ref().unwrap().clone();
            let expect: Vec<fpk_sim::FaultConfig> =
                expect.into_iter().map(fpk_sim::FaultConfig::iid).collect();
            assert_eq!(probs, expect, "k = {k}");
            // And the cell actually runs through the engine.
            assert!(sc.run_seeded(1).is_ok(), "k = {k} must validate");
        }
    }

    #[test]
    fn hop_count_keeps_pinned_routes_on_single_link_base() {
        // On a 1-link base "full span" and "pinned to hop 0" are the
        // same route; an explicit pin must survive the sweep rather
        // than silently becoming a long flow.
        let base = base().with_routes(vec![fpk_sim::Route::single(0)]);
        let cells = Sweep::new(base, 3).axis(Axis::hop_count(vec![4.0])).cells();
        let routes = cells[0].scenario.routes.as_ref().unwrap();
        assert_eq!(routes[0], fpk_sim::Route::single(0), "pin preserved");
    }

    #[test]
    fn qdisc_and_packet_bytes_axes_apply() {
        let sweep = Sweep::new(base(), 11)
            .axis(Axis::qdisc(vec![0.0, 1.0, 2.0, 3.0]))
            .axis(Axis::packet_bytes(vec![500.0, 1500.0]));
        let cells = sweep.cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].scenario.qdisc, fpk_sim::QdiscKind::Fifo);
        assert_eq!(
            cells[2].scenario.qdisc,
            fpk_sim::QdiscKind::ThresholdMark { threshold: 5.0 }
        );
        assert_eq!(
            cells[4].scenario.qdisc,
            fpk_sim::QdiscKind::AveragedMark { threshold: 2.5 }
        );
        assert!(matches!(
            cells[6].scenario.qdisc,
            fpk_sim::QdiscKind::RedMark { .. }
        ));
        let pb = cells[1].scenario.packet_bytes.expect("bytes axis applied");
        assert_eq!(
            pb.dist,
            fpk_sim::FlowSizeDist::Deterministic { packets: 1500 }
        );
        assert_eq!(pb.ref_bytes, fpk_sim::Bytes(1000.0));
        assert_eq!(cells[1].scenario.name, "grid[qdisc=0,bytes=1500]");
        // Every combination must survive engine validation.
        assert!(cells[7].scenario.run_seeded(1).is_ok());
    }

    #[test]
    fn crn_pairs_every_cell_on_one_seed_stream() {
        let plain = Sweep::new(base(), 42).axis(Axis::mu(vec![10.0, 20.0, 30.0]));
        let crn = plain.clone().with_common_random_numbers();
        assert!(!plain.common_random_numbers());
        assert!(crn.common_random_numbers());
        let cells = crn.cells();
        // Every cell shares cell 0's seed — replication r is seed-paired
        // across the whole grid.
        assert!(cells.iter().all(|c| c.seed == cells[0].seed));
        assert_eq!(cells[0].seed, plain.cells()[0].seed);
        // Scenario parameters still vary; only the noise is shared.
        assert_eq!(cells[2].scenario.config.mu, 30.0);
    }

    #[test]
    fn empty_axis_empties_the_grid() {
        let sweep = Sweep::new(base(), 1).axis(Axis::mu(Vec::new()));
        assert!(sweep.is_empty());
        assert!(sweep.cells().is_empty());
    }

    #[test]
    fn derive_seed_avalanches() {
        // Neighbouring indices must not produce neighbouring seeds.
        let s0 = derive_seed(7, 0);
        let s1 = derive_seed(7, 1);
        assert_ne!(s0, s1);
        assert!(
            (s0 ^ s1).count_ones() > 8,
            "weak diffusion: {s0:x} vs {s1:x}"
        );
    }
}
