//! `fpk-scenarios` — the scenario / sweep / ensemble layer over the
//! discrete-event simulator.
//!
//! The paper's tables are all parameter sweeps (γ/δ grids, flow counts,
//! delays, DECbit thresholds); this crate replaces the hand-rolled sweep
//! loop every experiment binary used to carry with four composable
//! pieces:
//!
//! * [`Scenario`] — a named bundle of `SimConfig` + sources + faults,
//!   optionally a multi-hop `Topology` with per-source `Route`s:
//!   everything a run needs but a seed. Every scenario runs through the
//!   one topology-first engine (`fpk_sim::run_network`).
//! * [`Sweep`] + [`Axis`] — expand parameter axes into a cartesian grid
//!   of cells, each with a deterministic seed derived splitmix-style
//!   from `(base_seed, cell_index)`.
//! * [`Ensemble`] — R replications per cell aggregated into
//!   mean / std-dev / 95% CI per `RunSummary` field, streamed through
//!   [`CellAccum`] so huge grids never hold per-replication summaries.
//! * [`run_sweep`] — a parallel executor on a persistent worker [`pool`]
//!   (workers spawned once per process, parked between sweeps, each
//!   keeping its `NetArena` scratch) with the `montecarlo.rs`
//!   determinism policy: bit-identical output for a fixed base seed
//!   regardless of thread count (`FPK_THREADS` overrides the worker
//!   count; `FPK_POOL=off` falls back to spawn-per-call scoped
//!   threads), plus the shared `results/<name>.json` artifact writer
//!   ([`write_json`]). Stress-scale grids shard across processes with
//!   [`run_sweep_shard`] / [`SweepReport::merge`], and control-law A/B
//!   contrasts pair seeds via [`Sweep::with_common_random_numbers`] and
//!   [`paired_diff`].
//!
//! # Example
//!
//! A 2×2 grid (service rate × flow count), three seeds per cell:
//!
//! ```
//! use fpk_congestion::LinearExp;
//! use fpk_scenarios::{run_sweep, Axis, Scenario, Sweep};
//! use fpk_sim::{Service, SimConfig, SourceSpec};
//!
//! let base = Scenario::new(
//!     "doc_grid",
//!     SimConfig {
//!         mu: 50.0, service: Service::Exponential, buffer: None,
//!         t_end: 10.0, warmup: 2.0, sample_interval: 0.1, seed: 0,
//!     },
//!     vec![SourceSpec::Rate {
//!         law: LinearExp::new(8.0, 0.5, 10.0),
//!         lambda0: 20.0, update_interval: 0.1, prop_delay: 0.01, poisson: true,
//!     }],
//! );
//! let sweep = Sweep::new(base, 42)
//!     .axis(Axis::mu(vec![40.0, 80.0]))
//!     .axis(Axis::flow_count(vec![1.0, 2.0]));
//! let report = run_sweep(&sweep, 3)?;
//! assert_eq!(report.cells.len(), 4);
//! assert!(report.cells.iter().all(|c| c.stats.utilization.mean > 0.0));
//! # Ok::<(), fpk_numerics::NumericsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod ensemble;
pub mod exec;
pub mod pool;
pub mod scenario;
pub mod sweep;

pub use artifact::{
    load_sweep_report, merge_sweep_shards, results_dir, write_json, write_sweep_shard,
};
pub use ensemble::{
    aggregate, paired_diff, CellAccum, Ensemble, EnsembleStats, Stat, WorkloadEnsemble,
};
pub use exec::{
    pool_enabled, run_cells, run_indexed, run_indexed_scoped, run_indexed_with, run_sweep,
    run_sweep_on, run_sweep_shard, run_sweep_unpooled, thread_count, AxisReport, CellReport, Shard,
    SweepReport,
};
pub use scenario::Scenario;
pub use sweep::{derive_seed, Axis, Cell, Sweep};

#[cfg(test)]
pub(crate) mod test_env {
    //! Shared lock for tests that touch process-global environment
    //! variables (`FPK_THREADS`, `FPK_POOL`, `FPK_RESULTS_DIR`): the
    //! test runner is threaded, so an unguarded `set_var` in one test
    //! races every other test that reads the same variable.
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// Hold the guard for the whole env-mutating (or env-sensitive)
    /// test. Poisoning is ignored: a failed test must not cascade.
    pub(crate) fn lock() -> MutexGuard<'static, ()> {
        ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Snapshot one variable's current value and restore it on drop, so
    /// an env-mutating test cannot clobber an externally-set override
    /// (CI pins `FPK_THREADS=1` for a whole test run).
    pub(crate) struct VarGuard {
        key: &'static str,
        prev: Option<std::ffi::OsString>,
    }

    impl VarGuard {
        pub(crate) fn capture(key: &'static str) -> Self {
            Self {
                key,
                prev: std::env::var_os(key),
            }
        }
    }

    impl Drop for VarGuard {
        fn drop(&mut self) {
            match &self.prev {
                Some(v) => std::env::set_var(self.key, v),
                None => std::env::remove_var(self.key),
            }
        }
    }
}
