//! `fpk-scenarios` — the scenario / sweep / ensemble layer over the
//! discrete-event simulator.
//!
//! The paper's tables are all parameter sweeps (γ/δ grids, flow counts,
//! delays, DECbit thresholds); this crate replaces the hand-rolled sweep
//! loop every experiment binary used to carry with four composable
//! pieces:
//!
//! * [`Scenario`] — a named bundle of `SimConfig` + sources + faults,
//!   optionally a multi-hop `Topology` with per-source `Route`s:
//!   everything a run needs but a seed. Every scenario runs through the
//!   one topology-first engine (`fpk_sim::run_network`).
//! * [`Sweep`] + [`Axis`] — expand parameter axes into a cartesian grid
//!   of cells, each with a deterministic seed derived splitmix-style
//!   from `(base_seed, cell_index)`.
//! * [`Ensemble`] — R replications per cell aggregated into
//!   mean / std-dev / 95% CI per `RunSummary` field.
//! * [`run_sweep`] — a parallel executor on `std::thread::scope` with
//!   the `montecarlo.rs` determinism policy: bit-identical output for a
//!   fixed base seed regardless of thread count (`FPK_THREADS`
//!   overrides the worker count), plus the shared `results/<name>.json`
//!   artifact writer ([`write_json`]).
//!
//! # Example
//!
//! A 2×2 grid (service rate × flow count), three seeds per cell:
//!
//! ```
//! use fpk_congestion::LinearExp;
//! use fpk_scenarios::{run_sweep, Axis, Scenario, Sweep};
//! use fpk_sim::{Service, SimConfig, SourceSpec};
//!
//! let base = Scenario::new(
//!     "doc_grid",
//!     SimConfig {
//!         mu: 50.0, service: Service::Exponential, buffer: None,
//!         t_end: 10.0, warmup: 2.0, sample_interval: 0.1, seed: 0,
//!     },
//!     vec![SourceSpec::Rate {
//!         law: LinearExp::new(8.0, 0.5, 10.0),
//!         lambda0: 20.0, update_interval: 0.1, prop_delay: 0.01, poisson: true,
//!     }],
//! );
//! let sweep = Sweep::new(base, 42)
//!     .axis(Axis::mu(vec![40.0, 80.0]))
//!     .axis(Axis::flow_count(vec![1.0, 2.0]));
//! let report = run_sweep(&sweep, 3)?;
//! assert_eq!(report.cells.len(), 4);
//! assert!(report.cells.iter().all(|c| c.stats.utilization.mean > 0.0));
//! # Ok::<(), fpk_numerics::NumericsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod ensemble;
pub mod exec;
pub mod scenario;
pub mod sweep;

pub use artifact::{results_dir, write_json};
pub use ensemble::{aggregate, Ensemble, EnsembleStats, Stat};
pub use exec::{
    run_cells, run_indexed, run_indexed_with, run_sweep, run_sweep_on, thread_count, AxisReport,
    CellReport, SweepReport,
};
pub use scenario::Scenario;
pub use sweep::{derive_seed, Axis, Cell, Sweep};
