//! The persistent worker pool behind the sweep executor.
//!
//! PR 5 left the parallel sweep path *losing* to serial at table-sized
//! grids: `std::thread::scope` spawned and joined fresh OS threads for
//! every sweep, and the ~100µs of spawn overhead swamped the win on
//! small grids (`BENCH_baseline.json`, `scenario_grid/*`). This module
//! replaces spawn-per-call with workers that are created once per
//! process and reused by every sweep and every experiment binary:
//!
//! * **Lifecycle** — helper threads are spawned lazily the first time a
//!   batch needs them and then park on their job channel (`mpsc::recv`
//!   blocks on a condvar). They live for the rest of the process; the
//!   pool never joins them.
//! * **Worker-owned scratch** — each helper owns a [`Scratch`] cache
//!   (keyed by type) that persists across batches, so the `NetArena` a
//!   sweep worker uses is allocated once per worker, not once per sweep.
//!   The calling thread participates as stripe 0 with a thread-local
//!   scratch of its own.
//! * **Determinism** — a batch is split into `threads` stripes (stripe
//!   `w` takes jobs `w, w+T, w+2T, …`), one helper per stripe, and the
//!   stripes are interleaved back into job order. Because every job is a
//!   pure function of its index, output is bit-identical for any stripe
//!   count and any pool state — the same contract the scoped executor
//!   had.
//! * **Loud failure** — worker panics are caught per job, carried back
//!   with the failing job index, and re-raised on the calling thread
//!   naming both (the job index is the cell index for sweep batches, so
//!   a 10⁵-cell sweep names the one cell that died). Helpers survive job
//!   panics and keep serving later batches.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, OnceLock};

/// Per-worker scratch cache, keyed by type: the first batch that asks
/// for a `NetArena` pays for its construction, every later batch on the
/// same worker reuses it (with whatever buffer capacity earlier runs
/// grew). Distinct scratch types coexist, so alternating sweep batches
/// (`NetArena`) with custom-evaluator batches (`()`) does not thrash.
#[derive(Default)]
pub struct Scratch(Vec<(TypeId, Box<dyn Any + Send>)>);

impl Scratch {
    /// The cached `C`, constructed via `init` on first use.
    pub fn get_or_insert_with<C: Any + Send>(&mut self, init: impl FnOnce() -> C) -> &mut C {
        let tid = TypeId::of::<C>();
        let pos = match self.0.iter().position(|(t, _)| *t == tid) {
            Some(pos) => pos,
            None => {
                self.0.push((tid, Box::new(init())));
                self.0.len() - 1
            }
        };
        self.0[pos]
            .1
            .downcast_mut::<C>()
            .expect("scratch slot holds the type it was keyed by")
    }
}

/// A job that panicked: which index died, and the original payload.
pub(crate) struct JobPanic {
    pub(crate) index: usize,
    pub(crate) payload: Box<dyn Any + Send>,
}

/// One stripe's outcome: the collected results (type-erased `Vec<T>`),
/// or the stripe's first panic.
type StripeOutcome = Result<Box<dyn Any + Send>, JobPanic>;

/// Type-erased batch: knows how to run one stripe of itself.
trait Stripe: Send + Sync {
    fn run(&self, scratch: &mut Scratch, stripe: usize) -> StripeOutcome;
}

struct Batch<C, T, I, F> {
    n_jobs: usize,
    stripes: usize,
    init: I,
    f: F,
    _types: std::marker::PhantomData<fn() -> (C, T)>,
}

impl<C, T, I, F> Stripe for Batch<C, T, I, F>
where
    C: Any + Send,
    T: Send + 'static,
    I: Fn() -> C + Send + Sync,
    F: Fn(&mut C, usize) -> T + Send + Sync,
{
    fn run(&self, scratch: &mut Scratch, stripe: usize) -> StripeOutcome {
        let ctx = scratch.get_or_insert_with(&self.init);
        let mut out: Vec<T> = Vec::with_capacity(self.n_jobs / self.stripes + 1);
        let mut i = stripe;
        // lint: hot-path arena(out)
        while i < self.n_jobs {
            // Catch per job so the failing index travels with the
            // payload and the worker survives to serve later batches.
            // `AssertUnwindSafe`: on panic the scratch may hold
            // half-reset buffers, but every run fully re-initialises the
            // state it reads (`NetArena::reset`), so reuse stays sound.
            match catch_unwind(AssertUnwindSafe(|| (self.f)(&mut *ctx, i))) {
                Ok(v) => out.push(v),
                Err(payload) => return Err(JobPanic { index: i, payload }),
            }
            i += self.stripes;
        }
        // lint: end
        Ok(Box::new(out))
    }
}

/// A job message: run `stripe` of `batch` and report on `results`.
struct Job {
    batch: Arc<dyn Stripe>,
    stripe: usize,
    results: Sender<(usize, StripeOutcome)>,
}

/// The process-wide persistent pool (see the module docs).
pub struct WorkerPool {
    /// Job channels of the spawned helpers; index `w` serves stripe
    /// `w + 1` of any batch wide enough to need it.
    helpers: Mutex<Vec<Sender<Job>>>,
}

static POOL: OnceLock<WorkerPool> = OnceLock::new();

thread_local! {
    /// Stripe-0 scratch of whichever thread submits batches. Persists
    /// across sweeps exactly like a helper's scratch.
    static CALLER_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());

    /// True on pool helper threads. A helper that submits a nested
    /// batch must run it inline: enqueueing stripes onto the pool could
    /// land them in its own queue, which it cannot drain while blocked
    /// waiting for them.
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Run `op` against the calling thread's persistent scratch, or a fresh
/// one when the thread-local is already borrowed (nested batches —
/// outputs never depend on scratch state).
fn with_caller_scratch<R>(op: impl FnOnce(&mut Scratch) -> R) -> R {
    CALLER_SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut scratch) => op(&mut scratch),
        Err(_) => op(&mut Scratch::default()),
    })
}

/// The process-wide pool, created on first use.
pub fn pool() -> &'static WorkerPool {
    POOL.get_or_init(|| WorkerPool {
        helpers: Mutex::new(Vec::new()),
    })
}

impl WorkerPool {
    /// Job senders for helpers `0..n`, spawning any that do not exist
    /// yet. Helpers are never torn down; a later batch that needs fewer
    /// simply leaves the rest parked.
    fn helper_senders(&self, n: usize) -> Vec<Sender<Job>> {
        let mut helpers = self.helpers.lock().expect("pool mutex");
        while helpers.len() < n {
            let (tx, rx) = channel::<Job>();
            let id = helpers.len();
            std::thread::Builder::new()
                .name(format!("fpk-pool-{id}"))
                .spawn(move || {
                    IN_POOL_WORKER.with(|f| f.set(true));
                    let mut scratch = Scratch::default();
                    while let Ok(job) = rx.recv() {
                        let outcome = job.batch.run(&mut scratch, job.stripe);
                        // A closed result channel means the caller
                        // already panicked on another stripe's failure;
                        // drop the result and keep serving.
                        let _ = job.results.send((job.stripe, outcome));
                    }
                })
                .expect("spawn pool worker");
            helpers.push(tx);
        }
        helpers[..n].to_vec()
    }

    /// Run `n_jobs` index-pure jobs as `threads` stripes and return the
    /// results in job order. Stripe 0 runs on the calling thread (with
    /// its thread-local scratch); stripes `1..threads` run on persistent
    /// helpers. Panics if a job panicked, naming the smallest failing
    /// job index and the original payload.
    pub fn run_batch<C, T, I, F>(&self, n_jobs: usize, threads: usize, init: I, f: F) -> Vec<T>
    where
        C: Any + Send,
        T: Send + 'static,
        I: Fn() -> C + Send + Sync + 'static,
        F: Fn(&mut C, usize) -> T + Send + Sync + 'static,
    {
        if n_jobs == 0 {
            return Vec::new();
        }
        let stripes = threads.clamp(1, n_jobs);
        // Single-stripe batches (and nested batches on a pool helper)
        // run entirely on the calling thread: no channel traffic, no
        // helper wake-ups — just the persistent caller scratch.
        if stripes == 1 || IN_POOL_WORKER.with(std::cell::Cell::get) {
            let batch = Batch::<C, T, I, F> {
                n_jobs,
                stripes: 1,
                init,
                f,
                _types: std::marker::PhantomData,
            };
            return match with_caller_scratch(|s| batch.run(s, 0)) {
                Ok(boxed) => *boxed
                    .downcast::<Vec<T>>()
                    .expect("stripe returns the batch result type"),
                Err(p) => resume_with_index(p),
            };
        }
        let batch: Arc<dyn Stripe> = Arc::new(Batch::<C, T, I, F> {
            n_jobs,
            stripes,
            init,
            f,
            _types: std::marker::PhantomData,
        });
        let (results_tx, results_rx) = channel();
        for (w, sender) in self.helper_senders(stripes - 1).into_iter().enumerate() {
            sender
                .send(Job {
                    batch: Arc::clone(&batch),
                    stripe: w + 1,
                    results: results_tx.clone(),
                })
                .expect("pool worker hung up");
        }
        drop(results_tx);
        // The caller works stripe 0 itself while the helpers run.
        let mine = with_caller_scratch(|s| batch.run(s, 0));
        let mut outcomes: Vec<Option<StripeOutcome>> = (0..stripes).map(|_| None).collect();
        outcomes[0] = Some(mine);
        for (stripe, outcome) in results_rx {
            outcomes[stripe] = Some(outcome);
        }
        let mut stripe_vecs: Vec<std::vec::IntoIter<T>> = Vec::with_capacity(stripes);
        let mut first_panic: Option<JobPanic> = None;
        for outcome in outcomes {
            match outcome.expect("every stripe reports") {
                Ok(boxed) => stripe_vecs.push(
                    boxed
                        .downcast::<Vec<T>>()
                        .expect("stripe returns the batch result type")
                        .into_iter(),
                ),
                Err(p) => {
                    if first_panic.as_ref().is_none_or(|q| p.index < q.index) {
                        first_panic = Some(p);
                    }
                    stripe_vecs.push(Vec::new().into_iter());
                }
            }
        }
        if let Some(p) = first_panic {
            resume_with_index(p);
        }
        (0..n_jobs)
            .map(|i| {
                stripe_vecs[i % stripes]
                    .next()
                    .expect("stripe covers its indices")
            })
            .collect()
    }
}

/// Re-raise a caught job panic on the calling thread, naming the failing
/// job index alongside the original payload. Shared with the scoped
/// fallback executor so both paths report failures identically.
pub(crate) fn resume_with_index(p: JobPanic) -> ! {
    let msg = p
        .payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| p.payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    panic!("parallel job {} panicked: {}", p.index, msg);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn batches_return_results_in_job_order() {
        for threads in [1, 2, 3, 8] {
            let out = pool().run_batch(13, threads, || (), |(), i| 3 * i);
            assert_eq!(out, (0..13).map(|i| 3 * i).collect::<Vec<_>>());
        }
        let empty: Vec<usize> = pool().run_batch(0, 4, || (), |(), i| i);
        assert!(empty.is_empty());
    }

    /// A scratch type no other test uses, so cross-test pool sharing
    /// cannot perturb the init count.
    struct CountedScratch;

    #[test]
    fn worker_scratch_persists_across_batches() {
        static INITS: AtomicUsize = AtomicUsize::new(0);
        let init = || {
            INITS.fetch_add(1, Ordering::SeqCst);
            CountedScratch
        };
        let run = || {
            let out: Vec<usize> =
                pool().run_batch(9, 3, init, |_scratch: &mut CountedScratch, i| i * i);
            assert_eq!(out, (0..9).map(|i| i * i).collect::<Vec<_>>());
        };
        run();
        let after_first = INITS.load(Ordering::SeqCst);
        assert!(
            after_first <= 3,
            "three stripes construct at most three scratches, got {after_first}"
        );
        run();
        run();
        assert_eq!(
            INITS.load(Ordering::SeqCst),
            after_first,
            "repeat batches must reuse the cached worker scratch"
        );
    }

    #[test]
    fn job_panics_name_the_failing_index_and_payload() {
        let caught = catch_unwind(|| {
            pool().run_batch(
                20,
                4,
                || (),
                |(), i| {
                    assert!(i != 13, "cell exploded");
                    i
                },
            )
        })
        .expect_err("the panicking job must propagate");
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("job 13"), "missing index: {msg}");
        assert!(msg.contains("cell exploded"), "missing payload: {msg}");
        // The pool survives the panic and serves later batches.
        let out = pool().run_batch(5, 4, || (), |(), i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn earliest_failing_index_wins() {
        // Jobs 3 and 11 both panic; the re-raise must name job 3
        // regardless of which stripe finishes first.
        for _ in 0..8 {
            let caught = catch_unwind(|| {
                pool().run_batch(
                    16,
                    4,
                    || (),
                    |(), i| {
                        assert!(i != 3 && i != 11, "boom {i}");
                        i
                    },
                )
            })
            .expect_err("must panic");
            let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("job 3"), "wrong index: {msg}");
        }
    }

    #[test]
    fn nested_batches_do_not_deadlock() {
        let out = pool().run_batch(
            4,
            2,
            || (),
            |(), i| {
                let inner: Vec<usize> = pool().run_batch(3, 2, || (), move |(), j| i * 10 + j);
                inner.into_iter().sum::<usize>()
            },
        );
        assert_eq!(out, vec![3, 33, 63, 93]);
    }
}
