//! The shared `results/<name>.json` artifact writer — and, for the
//! sharded stress tier, the reader that merges partial sweep reports
//! back together.
//!
//! Every experiment binary and sweep report funnels through this one
//! implementation so artifact location and formatting stay uniform
//! (`fpk_bench::write_json` delegates here). Shard artifacts carry the
//! shard geometry in the *file name* (`<name>.shard<i>of<n>.json`),
//! never in the JSON body, so a shard report's schema is byte-identical
//! to an unsharded report's. The vendored `serde_json` writes floats in
//! shortest-roundtrip form, so load → merge → re-serialise reproduces
//! an unsharded report byte for byte.

use crate::ensemble::{EnsembleStats, Stat, WorkloadEnsemble};
use crate::exec::{AxisReport, CellReport, Shard, SweepReport};
use fpk_numerics::Result;
use serde::{Serialize, Value};
use std::fs;
use std::path::{Path, PathBuf};

/// Where JSON artifacts are written: the `FPK_RESULTS_DIR` environment
/// variable when set and non-empty, otherwise `results/` under the
/// current working directory (the workspace root when run via
/// `cargo run`).
///
/// # Panics
/// Panics when the chosen directory cannot be created, naming the
/// attempted path — silently scattering artifacts into the cwd would
/// contradict [`write_json`]'s "fail loudly rather than record
/// nothing" policy.
#[must_use]
pub fn results_dir() -> PathBuf {
    // lint: allow(env-var) — FPK_RESULTS_DIR is a designated config accessor (DESIGN §3h); only the artifact path changes, never the bytes.
    let dir = std::env::var("FPK_RESULTS_DIR")
        .ok()
        .filter(|d| !d.is_empty())
        .map_or_else(|| PathBuf::from("results"), PathBuf::from);
    if let Err(e) = fs::create_dir_all(&dir) {
        panic!(
            "cannot create results directory {} (FPK_RESULTS_DIR override {}): {e}",
            dir.display(),
            // lint: allow(env-var) — re-read only to name the override in the panic message.
            if std::env::var_os("FPK_RESULTS_DIR").is_some() {
                "active"
            } else {
                "not set"
            }
        );
    }
    dir
}

/// Serialise `value` to `results/<name>.json` (pretty-printed) and
/// return the path written.
///
/// # Panics
/// Panics when serialisation or the write fails — an experiment should
/// fail loudly rather than record nothing.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let path = results_dir().join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(value).expect("artifact must serialise");
    fs::write(&path, body).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    path
}

/// Write one shard's partial report to
/// `<results dir>/<name>.shard<i>of<n>.json` and return the path. The
/// body is an ordinary [`SweepReport`]; only the file name records the
/// shard geometry.
pub fn write_sweep_shard(report: &SweepReport, shard: Shard) -> PathBuf {
    write_json(&shard.file_stem(&report.name), report)
}

/// Read a [`SweepReport`] (sharded or not) back from a JSON artifact.
///
/// # Panics
/// Panics when the file cannot be read or does not parse as a sweep
/// report, naming the path — resuming from a corrupt checkpoint must
/// fail loudly, not merge garbage.
#[must_use]
pub fn load_sweep_report(path: &Path) -> SweepReport {
    let body =
        fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    let value =
        serde_json::from_str(&body).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()));
    sweep_report_from(&value, path)
}

/// Load the `count` shard files of sweep `name` from the results dir
/// (see [`results_dir`]) and merge them into the full report.
///
/// # Errors
/// Propagates [`SweepReport::merge`] validation (metadata drift,
/// missing/duplicate cells).
///
/// # Panics
/// Panics when a shard file is absent or unreadable (the checkpoint is
/// incomplete — rerun the missing shard), naming the path.
pub fn merge_sweep_shards(name: &str, count: usize) -> Result<SweepReport> {
    let dir = results_dir();
    let parts: Vec<SweepReport> = (0..count)
        .map(|i| {
            let shard = Shard { index: i, count };
            load_sweep_report(&dir.join(format!("{}.json", shard.file_stem(name))))
        })
        .collect();
    SweepReport::merge(parts)
}

// ---- Value → report mapping -------------------------------------------
//
// The vendored serde subset has no visitor-based Deserialize, so the
// loader maps the parsed `serde::Value` tree by hand. Shape errors
// panic with the offending path + field; see `load_sweep_report`.

fn field<'a>(v: &'a Value, key: &str, path: &Path) -> &'a Value {
    v.get(key)
        .unwrap_or_else(|| panic!("parsing {}: missing field {key:?}", path.display()))
}

fn get_f64(v: &Value, key: &str, path: &Path) -> f64 {
    field(v, key, path)
        .as_f64()
        .unwrap_or_else(|| panic!("parsing {}: field {key:?} is not a number", path.display()))
}

fn get_usize(v: &Value, key: &str, path: &Path) -> usize {
    match *field(v, key, path) {
        Value::UInt(u) => usize::try_from(u).ok(),
        Value::Int(i) => usize::try_from(i).ok(),
        _ => None,
    }
    .unwrap_or_else(|| panic!("parsing {}: field {key:?} is not an index", path.display()))
}

fn get_u64(v: &Value, key: &str, path: &Path) -> u64 {
    match *field(v, key, path) {
        Value::UInt(u) => Some(u),
        Value::Int(i) => u64::try_from(i).ok(),
        _ => None,
    }
    .unwrap_or_else(|| panic!("parsing {}: field {key:?} is not a u64", path.display()))
}

fn get_str(v: &Value, key: &str, path: &Path) -> String {
    match field(v, key, path) {
        Value::Str(s) => s.clone(),
        _ => panic!("parsing {}: field {key:?} is not a string", path.display()),
    }
}

fn get_array<'a>(v: &'a Value, key: &str, path: &Path) -> &'a [Value] {
    match field(v, key, path) {
        Value::Array(items) => items,
        _ => panic!("parsing {}: field {key:?} is not an array", path.display()),
    }
}

fn stat_from(v: &Value, path: &Path) -> Stat {
    Stat {
        mean: get_f64(v, "mean", path),
        std_dev: get_f64(v, "std_dev", path),
        ci95: get_f64(v, "ci95", path),
        n: get_u64(v, "n", path),
    }
}

/// Like [`stat_from`] but tolerating absence: checkpoint shards written
/// before a field existed load as an empty (all-zero) [`Stat`].
fn stat_or_zero(v: &Value, key: &str, path: &Path) -> Stat {
    match v.get(key) {
        None | Some(Value::Null) => Stat {
            mean: 0.0,
            std_dev: 0.0,
            ci95: 0.0,
            n: 0,
        },
        Some(s) => stat_from(s, path),
    }
}

fn stats_from(v: &Value, path: &Path) -> EnsembleStats {
    EnsembleStats {
        replications: get_usize(v, "replications", path),
        jain: stat_from(field(v, "jain", path), path),
        mean_queue: stat_from(field(v, "mean_queue", path), path),
        utilization: stat_from(field(v, "utilization", path), path),
        total_throughput: stat_from(field(v, "total_throughput", path), path),
        total_dropped: stat_from(field(v, "total_dropped", path), path),
        flow_throughput: get_array(v, "flow_throughput", path)
            .iter()
            .map(|s| stat_from(s, path))
            .collect(),
        flow_ctl_std: get_array(v, "flow_ctl_std", path)
            .iter()
            .map(|s| stat_from(s, path))
            .collect(),
        oscillation_amplitude: match field(v, "oscillation_amplitude", path) {
            Value::Null => None,
            s => Some(stat_from(s, path)),
        },
        // Absent in pre-workload checkpoint files: default to None
        // rather than panicking, so old shards stay loadable.
        workload: match v.get("workload") {
            None | Some(Value::Null) => None,
            Some(w) => Some(workload_ensemble_from(w, path)),
        },
        // Absent in pre-fault checkpoint files: default to zero stats.
        downtime_frac: stat_or_zero(v, "downtime_frac", path),
        recovery_time: stat_or_zero(v, "recovery_time", path),
    }
}

fn workload_ensemble_from(v: &Value, path: &Path) -> WorkloadEnsemble {
    let stat = |key| stat_from(field(v, key, path), path);
    WorkloadEnsemble {
        arrived: stat("arrived"),
        completed: stat("completed"),
        fct_mean: stat("fct_mean"),
        fct_p50: stat("fct_p50"),
        fct_p99: stat("fct_p99"),
        slowdown_mean: stat("slowdown_mean"),
        slowdown_p99: stat("slowdown_p99"),
        peak_active: stat("peak_active"),
        // Absent in pre-RTO checkpoint files: default to zero stats.
        packets_dropped: stat_or_zero(v, "packets_dropped", path),
        goodput: stat_or_zero(v, "goodput", path),
        retx_overhead: stat_or_zero(v, "retx_overhead", path),
        packets_gave_up: stat_or_zero(v, "packets_gave_up", path),
        flows_gave_up: stat_or_zero(v, "flows_gave_up", path),
    }
}

fn sweep_report_from(v: &Value, path: &Path) -> SweepReport {
    SweepReport {
        name: get_str(v, "name", path),
        base_seed: get_u64(v, "base_seed", path),
        replications: get_usize(v, "replications", path),
        axes: get_array(v, "axes", path)
            .iter()
            .map(|a| AxisReport {
                name: get_str(a, "name", path),
                values: get_array(a, "values", path)
                    .iter()
                    .map(|x| {
                        x.as_f64().unwrap_or_else(|| {
                            panic!("parsing {}: axis value is not a number", path.display())
                        })
                    })
                    .collect(),
            })
            .collect(),
        cells: get_array(v, "cells", path)
            .iter()
            .map(|c| CellReport {
                name: get_str(c, "name", path),
                index: get_usize(c, "index", path),
                coords: get_array(c, "coords", path)
                    .iter()
                    .map(|x| {
                        x.as_f64().unwrap_or_else(|| {
                            panic!("parsing {}: coord is not a number", path.display())
                        })
                    })
                    .collect(),
                seed: get_u64(c, "seed", path),
                stats: stats_from(field(c, "stats", path), path),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_env;

    #[test]
    fn writes_and_returns_path_honoring_env_override() {
        let _guard = test_env::lock();
        let _restore = test_env::VarGuard::capture("FPK_RESULTS_DIR");
        #[derive(Serialize)]
        struct Tiny {
            x: u32,
        }
        let path = write_json("scenarios_artifact_selftest", &Tiny { x: 7 });
        assert!(path.exists());
        let body = fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"x\": 7"));
        let _ = fs::remove_file(path);

        let override_dir = std::env::temp_dir().join("fpk_results_override_selftest");
        std::env::set_var("FPK_RESULTS_DIR", &override_dir);
        let path = write_json("scenarios_artifact_selftest_env", &Tiny { x: 9 });
        std::env::remove_var("FPK_RESULTS_DIR");
        assert_eq!(path.parent(), Some(override_dir.as_path()));
        assert!(path.exists());
        let _ = fs::remove_file(path);
        let _ = fs::remove_dir(override_dir);
    }

    #[test]
    fn uncreatable_results_dir_panics_with_the_attempted_path() {
        let _guard = test_env::lock();
        let _restore = test_env::VarGuard::capture("FPK_RESULTS_DIR");
        // A path *through a file* cannot be created as a directory.
        let blocker = std::env::temp_dir().join("fpk_results_blocker_selftest");
        fs::write(&blocker, b"not a directory").unwrap();
        let bad_dir = blocker.join("nested");
        std::env::set_var("FPK_RESULTS_DIR", &bad_dir);
        let caught = std::panic::catch_unwind(results_dir);
        std::env::remove_var("FPK_RESULTS_DIR");
        let _ = fs::remove_file(&blocker);
        let msg = caught
            .expect_err("uncreatable directory must panic, not fall back to cwd")
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains(&bad_dir.display().to_string()),
            "panic must name the attempted path: {msg}"
        );
    }

    #[test]
    fn sharded_write_load_merge_is_byte_identical_to_unsharded() {
        use crate::exec::{run_sweep_on, run_sweep_shard};
        use crate::scenario::Scenario;
        use crate::sweep::{Axis, Sweep};
        use fpk_congestion::LinearExp;
        use fpk_sim::{Service, SimConfig, SourceSpec};

        let _guard = test_env::lock();
        let _restore = test_env::VarGuard::capture("FPK_RESULTS_DIR");
        let base = Scenario::new(
            "artifact_shard_roundtrip",
            SimConfig {
                mu: 40.0,
                service: Service::Exponential,
                buffer: None,
                t_end: 2.0,
                warmup: 0.5,
                sample_interval: 0.1,
                seed: 0,
            },
            vec![SourceSpec::Rate {
                law: LinearExp::new(8.0, 0.5, 10.0),
                lambda0: 15.0,
                update_interval: 0.1,
                prop_delay: 0.01,
                poisson: true,
            }],
        );
        let sweep = Sweep::new(base, 31)
            .axis(Axis::mu(vec![30.0, 45.0, 60.0]))
            .axis(Axis::flow_count(vec![1.0, 2.0]));
        let whole = run_sweep_on(&sweep, 2, 2).unwrap();

        let dir = std::env::temp_dir().join("fpk_shard_roundtrip_selftest");
        std::env::set_var("FPK_RESULTS_DIR", &dir);
        // Two "processes": each runs its shard and writes its file.
        let mut shard_paths = Vec::new();
        for i in 0..2 {
            let shard = Shard::new(i, 2).unwrap();
            let part = run_sweep_shard(&sweep, 2, shard).unwrap();
            shard_paths.push(write_sweep_shard(&part, shard));
        }
        assert!(shard_paths[0].ends_with("artifact_shard_roundtrip.shard0of2.json"));
        // Resume: read the parts back and merge.
        let merged = merge_sweep_shards("artifact_shard_roundtrip", 2).unwrap();
        std::env::remove_var("FPK_RESULTS_DIR");
        for p in &shard_paths {
            let _ = fs::remove_file(p);
        }
        let _ = fs::remove_dir(&dir);
        // Byte-for-byte: the file round-trip (shortest-roundtrip float
        // formatting) plus the merge must reproduce the unsharded run.
        assert_eq!(
            serde_json::to_string_pretty(&whole).unwrap(),
            serde_json::to_string_pretty(&merged).unwrap()
        );
    }

    #[test]
    fn load_rejects_corrupt_checkpoints_loudly() {
        let _guard = test_env::lock();
        let path = std::env::temp_dir().join("fpk_corrupt_checkpoint_selftest.json");
        fs::write(&path, b"{\"name\": \"x\", \"truncated\": ").unwrap();
        let caught = std::panic::catch_unwind(|| load_sweep_report(&path));
        let _ = fs::remove_file(&path);
        let msg = caught
            .expect_err("corrupt JSON must panic")
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("fpk_corrupt_checkpoint_selftest.json"),
            "panic must name the file: {msg}"
        );
    }
}
