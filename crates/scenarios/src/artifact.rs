//! The shared `results/<name>.json` artifact writer.
//!
//! Every experiment binary and sweep report funnels through this one
//! implementation so artifact location and formatting stay uniform
//! (`fpk_bench::write_json` delegates here).

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Where JSON artifacts are written: `results/` under the current
/// working directory (the workspace root when run via `cargo run`), or
/// the current directory when `results/` cannot be created.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    if fs::create_dir_all(&dir).is_ok() {
        dir
    } else {
        PathBuf::from(".")
    }
}

/// Serialise `value` to `results/<name>.json` (pretty-printed) and
/// return the path written.
///
/// # Panics
/// Panics when serialisation or the write fails — an experiment should
/// fail loudly rather than record nothing.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let path = results_dir().join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(value).expect("artifact must serialise");
    fs::write(&path, body).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_returns_path() {
        #[derive(Serialize)]
        struct Tiny {
            x: u32,
        }
        let path = write_json("scenarios_artifact_selftest", &Tiny { x: 7 });
        assert!(path.exists());
        let body = fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"x\": 7"));
        let _ = fs::remove_file(path);
    }
}
