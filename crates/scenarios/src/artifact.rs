//! The shared `results/<name>.json` artifact writer.
//!
//! Every experiment binary and sweep report funnels through this one
//! implementation so artifact location and formatting stay uniform
//! (`fpk_bench::write_json` delegates here).

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Where JSON artifacts are written: the `FPK_RESULTS_DIR` environment
/// variable when set and non-empty, otherwise `results/` under the
/// current working directory (the workspace root when run via
/// `cargo run`); falls back to the current directory when the chosen
/// directory cannot be created.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("FPK_RESULTS_DIR")
        .ok()
        .filter(|d| !d.is_empty())
        .map_or_else(|| PathBuf::from("results"), PathBuf::from);
    if fs::create_dir_all(&dir).is_ok() {
        dir
    } else {
        PathBuf::from(".")
    }
}

/// Serialise `value` to `results/<name>.json` (pretty-printed) and
/// return the path written.
///
/// # Panics
/// Panics when serialisation or the write fails — an experiment should
/// fail loudly rather than record nothing.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let path = results_dir().join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(value).expect("artifact must serialise");
    fs::write(&path, body).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test covers both the default path and the env override: the
    // env var is process-global, so probing it in a second test would
    // race the first under the threaded test runner.
    #[test]
    fn writes_and_returns_path_honoring_env_override() {
        #[derive(Serialize)]
        struct Tiny {
            x: u32,
        }
        let path = write_json("scenarios_artifact_selftest", &Tiny { x: 7 });
        assert!(path.exists());
        let body = fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"x\": 7"));
        let _ = fs::remove_file(path);

        let override_dir = std::env::temp_dir().join("fpk_results_override_selftest");
        std::env::set_var("FPK_RESULTS_DIR", &override_dir);
        let path = write_json("scenarios_artifact_selftest_env", &Tiny { x: 9 });
        std::env::remove_var("FPK_RESULTS_DIR");
        assert_eq!(path.parent(), Some(override_dir.as_path()));
        assert!(path.exists());
        let _ = fs::remove_file(path);
        let _ = fs::remove_dir(override_dir);
    }
}
