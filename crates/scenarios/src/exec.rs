//! Sweep execution on the persistent worker pool.
//!
//! Determinism policy (same contract as `fpk_core::montecarlo`): every
//! job is a pure function of its linear index — cell parameters and all
//! RNG seeds derive from `(base_seed, index)` — and results are merged
//! back in index order. Output is therefore **bit-identical for a fixed
//! base seed regardless of thread count**; the `FPK_THREADS` environment
//! variable only changes wall-clock time.
//!
//! Execution model: batches run on the process-wide [`crate::pool`] —
//! workers are spawned once, park on their job channels between sweeps,
//! and keep their [`NetArena`] scratch across batches, so no sweep after
//! the first pays thread-spawn or arena-construction cost (the PR-5
//! executor spawned fresh `std::thread::scope` threads per sweep, which
//! made `scenario_grid/parallel` *lose* to serial at table-sized grids).
//! Workers *stride* the index space (worker `w` takes jobs
//! `w, w+T, w+2T, …`) and stripes are interleaved back into index order
//! after the batch. Setting `FPK_POOL=off` (or `0`) routes every batch
//! through the spawn-per-call scoped fallback ([`run_indexed_scoped`])
//! instead — same results, pre-pool cost profile.
//!
//! Sweeps aggregate **streamingly**: parallelism is per *cell*, each
//! worker folds its cell's replications one at a time through
//! [`CellAccum`], so a 10⁵-cell × R grid holds O(cells) finished
//! reports but never materialises the O(cells × R) run summaries the
//! collect-then-aggregate path kept live. For grids too big for one
//! process, [`run_sweep_shard`] computes a deterministic slice of the
//! grid and [`SweepReport::merge`] reassembles the full report from
//! shard parts — bit-identical to the unsharded run.

use crate::ensemble::{CellAccum, Ensemble, EnsembleStats};
use crate::pool::{pool, resume_with_index, JobPanic};
use crate::sweep::{Cell, Sweep};
use fpk_numerics::{NumericsError, Result};
use fpk_sim::NetArena;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Worker count: the `FPK_THREADS` override when set, otherwise the
/// machine's available parallelism.
///
/// # Panics
/// Panics when `FPK_THREADS` is set to anything but a positive integer
/// (unset or empty means "no override"). A typo'd determinism override
/// must fail loudly, not silently fall back to machine parallelism.
#[must_use]
pub fn thread_count() -> usize {
    // lint: allow(env-var) — FPK_THREADS is a designated config accessor (DESIGN §3h); worker count never feeds simulation results.
    match std::env::var("FPK_THREADS") {
        Err(std::env::VarError::NotPresent) => default_parallelism(),
        Err(std::env::VarError::NotUnicode(raw)) => {
            panic!("FPK_THREADS must be a positive integer, got non-UTF-8 {raw:?}")
        }
        Ok(s) if s.is_empty() => default_parallelism(),
        Ok(s) => match s.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => panic!(
                "FPK_THREADS must be a positive integer, got {s:?} \
                 (unset it for machine parallelism)"
            ),
        },
    }
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// True unless `FPK_POOL` is set to `off`, `0`, or `false` — the
/// kill-switch that routes batches through the spawn-per-call scoped
/// fallback instead of the persistent pool.
#[must_use]
pub fn pool_enabled() -> bool {
    !matches!(
        // lint: allow(env-var) — FPK_POOL is a designated config accessor (DESIGN §3h); pool routing is bit-identical either way.
        std::env::var("FPK_POOL").as_deref(),
        Ok("off" | "0" | "false")
    )
}

/// Run `n_jobs` independent jobs on `threads` workers and return their
/// results in job order. Runs on the persistent pool (or the scoped
/// fallback under `FPK_POOL=off`); either way the output is
/// bit-identical as long as `f` is a pure function of the index.
///
/// # Panics
/// Re-raises a panicking job on the calling thread, naming the failing
/// job index alongside the original payload.
pub fn run_indexed<T, F>(n_jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    run_indexed_with(n_jobs, threads, || (), move |(), i| f(i))
}

/// [`run_indexed`] with per-worker scratch state: every worker obtains
/// a `C` (pool workers reuse the one cached from earlier batches — this
/// is how sweep replications share one [`NetArena`] per worker across
/// the whole process) and threads it through all of its jobs.
/// Determinism contract: `f` must be a pure function of the *index* —
/// the scratch state may cache allocations but must not leak
/// information between jobs.
///
/// The `'static` bounds exist because pool workers outlive the call;
/// move [`Arc`]s into the closure for shared inputs, or use
/// [`run_indexed_scoped`] when borrowing locals matters more than pool
/// reuse.
///
/// # Panics
/// See [`run_indexed`].
pub fn run_indexed_with<T, C, I, F>(n_jobs: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    C: std::any::Any + Send,
    T: Send + 'static,
    I: Fn() -> C + Send + Sync + 'static,
    F: Fn(&mut C, usize) -> T + Send + Sync + 'static,
{
    if pool_enabled() {
        pool().run_batch(n_jobs, threads, init, f)
    } else {
        run_indexed_scoped(n_jobs, threads, init, f)
    }
}

/// The no-pool fallback executor: spawn `threads` scoped workers for
/// this one batch and join them before returning. Accepts borrowing
/// closures (no `'static`), costs a thread spawn per worker per call,
/// and reports job panics exactly like the pool (failing index +
/// original payload, smallest index wins).
///
/// # Panics
/// See [`run_indexed`].
pub fn run_indexed_scoped<T, C, I, F>(n_jobs: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, usize) -> T + Sync,
{
    if n_jobs == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n_jobs);
    let run_stripe = |w: usize| -> std::result::Result<Vec<T>, JobPanic> {
        let mut ctx = init();
        let mut stripe = Vec::with_capacity(n_jobs / threads + 1);
        let mut i = w;
        while i < n_jobs {
            match catch_unwind(AssertUnwindSafe(|| f(&mut ctx, i))) {
                Ok(v) => stripe.push(v),
                Err(payload) => return Err(JobPanic { index: i, payload }),
            }
            i += threads;
        }
        Ok(stripe)
    };
    let stripes: Vec<std::result::Result<Vec<T>, JobPanic>> = if threads == 1 {
        vec![run_stripe(0)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let run_stripe = &run_stripe;
                    scope.spawn(move || run_stripe(w))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("stripe worker catches its own panics"))
                .collect()
        })
    };
    let mut iters = Vec::with_capacity(threads);
    let mut first_panic: Option<JobPanic> = None;
    for outcome in stripes {
        match outcome {
            Ok(v) => iters.push(v.into_iter()),
            Err(p) => {
                if first_panic.as_ref().is_none_or(|q| p.index < q.index) {
                    first_panic = Some(p);
                }
                iters.push(Vec::new().into_iter());
            }
        }
    }
    if let Some(p) = first_panic {
        resume_with_index(p);
    }
    (0..n_jobs)
        .map(|i| iters[i % threads].next().expect("stripe exhausted"))
        .collect()
}

/// Evaluate every cell of a sweep with a custom function, in parallel,
/// results in cell order. For sweeps whose cells are not plain DES runs
/// (fluid models, DDEs, theory curves).
///
/// # Errors
/// Propagates the first failing cell (by cell order).
pub fn run_cells<T, F>(sweep: &Sweep, f: F) -> Result<Vec<T>>
where
    T: Send + 'static,
    F: Fn(&Cell) -> Result<T> + Send + Sync + 'static,
{
    let cells = Arc::new(sweep.cells());
    let jobs = Arc::clone(&cells);
    run_indexed_with(cells.len(), thread_count(), || (), move |(), i| f(&jobs[i]))
        .into_iter()
        .collect()
}

/// One axis of a [`SweepReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AxisReport {
    /// Axis name.
    pub name: String,
    /// Grid points along the axis.
    pub values: Vec<f64>,
}

/// One aggregated cell of a [`SweepReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellReport {
    /// Cell name (`base[axis=value,…]`).
    pub name: String,
    /// Linear row-major index in the grid.
    pub index: usize,
    /// Axis values at this cell, in axis order.
    pub coords: Vec<f64>,
    /// The cell's derived seed (replication seeds derive from it).
    pub seed: u64,
    /// Replication-aggregated statistics.
    pub stats: EnsembleStats,
}

/// The JSON artifact a sweep run produces: one entry per cell, plus
/// enough metadata (axes, seeds, replication count) to reproduce it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// Sweep (base scenario) name; also the artifact file stem.
    pub name: String,
    /// Base seed all cell seeds derive from.
    pub base_seed: u64,
    /// Replications per cell.
    pub replications: usize,
    /// Axis metadata in declaration order.
    pub axes: Vec<AxisReport>,
    /// Aggregated cells in row-major grid order (for a shard report:
    /// the shard's cells, still carrying their global grid indices).
    pub cells: Vec<CellReport>,
}

impl SweepReport {
    /// Write the report to `<results dir>/<name>.json` via the shared
    /// artifact writer and return the path. The directory defaults to
    /// `results/` and honours the `FPK_RESULTS_DIR` environment override
    /// (see [`crate::artifact::results_dir`]).
    pub fn write(&self) -> std::path::PathBuf {
        crate::artifact::write_json(&self.name, self)
    }

    /// Number of cells the axes span (what a complete report carries).
    #[must_use]
    pub fn grid_len(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Reassemble a full report from shard parts (any order, e.g. one
    /// [`run_sweep_shard`] output per process). Cells are re-sorted
    /// into grid order, so the merged report is **bit-identical** to
    /// what one unsharded [`run_sweep`] over the same sweep produces.
    ///
    /// # Errors
    /// [`NumericsError::InvalidParameter`] when `parts` is empty, the
    /// parts disagree on sweep metadata (name, base seed, replications,
    /// axes), or the union of their cells does not cover the grid
    /// exactly once (missing, duplicate, or out-of-range indices).
    pub fn merge(parts: Vec<SweepReport>) -> Result<SweepReport> {
        let Some(first) = parts.first() else {
            return Err(NumericsError::InvalidParameter {
                context: "merge: need at least one shard report",
            });
        };
        if parts[1..].iter().any(|p| {
            p.name != first.name
                || p.base_seed != first.base_seed
                || p.replications != first.replications
                || p.axes.len() != first.axes.len()
                || p.axes
                    .iter()
                    .zip(&first.axes)
                    .any(|(a, b)| a.name != b.name || a.values != b.values)
        }) {
            return Err(NumericsError::InvalidParameter {
                context: "merge: shard reports disagree on sweep metadata",
            });
        }
        let mut merged = SweepReport {
            name: first.name.clone(),
            base_seed: first.base_seed,
            replications: first.replications,
            axes: first.axes.clone(),
            cells: parts.into_iter().flat_map(|p| p.cells).collect(),
        };
        merged.cells.sort_by_key(|c| c.index);
        let complete = merged.cells.len() == merged.grid_len()
            && merged.cells.iter().enumerate().all(|(i, c)| c.index == i);
        if !complete {
            return Err(NumericsError::InvalidParameter {
                context: "merge: shard cells do not cover the grid exactly once",
            });
        }
        Ok(merged)
    }

    /// The cells whose coordinate on axis `k` equals `v` (within 1e-12).
    #[must_use]
    pub fn cells_where(&self, axis: usize, v: f64) -> Vec<&CellReport> {
        self.cells
            .iter()
            .filter(|c| c.coords.get(axis).is_some_and(|&x| (x - v).abs() < 1e-12))
            .collect()
    }

    /// [`Self::cells_where`], selecting the axis by *name* instead of
    /// position — robust against axes being reordered or inserted.
    /// Returns an empty vector when no axis carries that name.
    #[must_use]
    pub fn cells_where_label(&self, axis_name: &str, v: f64) -> Vec<&CellReport> {
        self.axes
            .iter()
            .position(|a| a.name == axis_name)
            .map_or_else(Vec::new, |k| self.cells_where(k, v))
    }
}

/// One slice of a sweep grid for multi-process (checkpoint/resume)
/// execution: shard `index` of `count` owns the cells whose grid index
/// is ≡ `index` (mod `count`). The modulo partition balances load even
/// when cost varies smoothly along an axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shard {
    /// Which slice this is (`0..count`).
    pub index: usize,
    /// Total number of slices.
    pub count: usize,
}

impl Shard {
    /// Shard `index` of `count`.
    ///
    /// # Errors
    /// [`NumericsError::InvalidParameter`] unless `index < count`.
    pub fn new(index: usize, count: usize) -> Result<Self> {
        if index < count {
            Ok(Self { index, count })
        } else {
            Err(NumericsError::InvalidParameter {
                context: "Shard: index must lie below count",
            })
        }
    }

    /// True when this shard owns grid cell `cell_index`.
    #[must_use]
    pub fn owns(&self, cell_index: usize) -> bool {
        cell_index % self.count == self.index
    }

    /// Artifact file stem for this shard of sweep `name`
    /// (`<name>.shard<i>of<n>`); the shard geometry lives in the file
    /// name so the `SweepReport` JSON schema stays byte-identical to an
    /// unsharded report's.
    #[must_use]
    pub fn file_stem(&self, name: &str) -> String {
        format!("{name}.shard{}of{}", self.index, self.count)
    }
}

/// Run a sweep with `replications` seeds per cell on the default worker
/// count ([`thread_count`]).
///
/// # Errors
/// Propagates the first failing replication (in deterministic cell
/// order) and ensemble-validation errors.
pub fn run_sweep(sweep: &Sweep, replications: usize) -> Result<SweepReport> {
    run_sweep_on(sweep, replications, thread_count())
}

/// [`run_sweep`] with an explicit worker count. Parallelism is per
/// *cell*: a worker runs all of a cell's replications in order, folding
/// each summary straight into a streaming [`CellAccum`] — memory per
/// in-flight cell is O(1) in the replication count, and the aggregated
/// output is bit-identical to collect-then-[`crate::aggregate`].
///
/// # Errors
/// See [`run_sweep`].
pub fn run_sweep_on(sweep: &Sweep, replications: usize, threads: usize) -> Result<SweepReport> {
    run_sweep_filtered(sweep, replications, threads, None)
}

/// Run only the cells a [`Shard`] owns, on the default worker count.
/// The report keeps global cell indices and per-cell seeds, so
/// [`SweepReport::merge`] over all `count` shard reports reproduces the
/// unsharded report bit-for-bit — shards may run in any order, in
/// separate processes, on different thread counts.
///
/// # Errors
/// See [`run_sweep`].
pub fn run_sweep_shard(sweep: &Sweep, replications: usize, shard: Shard) -> Result<SweepReport> {
    run_sweep_filtered(sweep, replications, thread_count(), Some(shard))
}

fn run_sweep_filtered(
    sweep: &Sweep,
    replications: usize,
    threads: usize,
    shard: Option<Shard>,
) -> Result<SweepReport> {
    // Validates `replications >= 1`.
    Ensemble::new(replications)?;
    let mut cells = sweep.cells();
    if let Some(shard) = shard {
        cells.retain(|c| shard.owns(c.index));
    }
    let cells = Arc::new(cells);
    let jobs = Arc::clone(&cells);
    let reports: Result<Vec<CellReport>> =
        run_indexed_with(cells.len(), threads, NetArena::new, move |arena, j| {
            let cell = &jobs[j];
            let mut accum = CellAccum::new();
            for r in 0..replications {
                let seed = Ensemble::replication_seed(cell.seed, r);
                accum.push(&cell.scenario.run_seeded_in(arena, seed)?)?;
            }
            Ok(CellReport {
                name: cell.scenario.name.clone(),
                index: cell.index,
                coords: cell.coords.clone(),
                seed: cell.seed,
                stats: accum.finish()?,
            })
        })
        .into_iter()
        .collect();
    Ok(SweepReport {
        name: sweep.name().to_string(),
        base_seed: sweep.base_seed(),
        replications,
        axes: sweep
            .axes()
            .iter()
            .map(|a| AxisReport {
                name: a.name.clone(),
                values: a.values.clone(),
            })
            .collect(),
        cells: reports?,
    })
}

/// The pre-pool sweep runner, kept as the reference/fallback path (and
/// the bench baseline's "serial" row): spawn-per-call scoped workers
/// over `(cell, replication)` jobs, collect every `RunSummary`, then
/// aggregate each cell's slice. Bit-identical output to
/// [`run_sweep_on`] — only the cost profile differs (O(cells × R)
/// summaries live at once, a fresh arena per worker per call).
///
/// # Errors
/// See [`run_sweep`].
pub fn run_sweep_unpooled(
    sweep: &Sweep,
    replications: usize,
    threads: usize,
) -> Result<SweepReport> {
    Ensemble::new(replications)?;
    let cells = sweep.cells();
    let n_jobs = cells.len() * replications;
    let summaries: Vec<Result<fpk_sim::RunSummary>> =
        run_indexed_scoped(n_jobs, threads, NetArena::new, |arena, job| {
            let cell = &cells[job / replications];
            let r = job % replications;
            cell.scenario
                .run_seeded_in(arena, Ensemble::replication_seed(cell.seed, r))
        });
    let mut reports = Vec::with_capacity(cells.len());
    let mut iter = summaries.into_iter();
    for cell in cells {
        let runs: Vec<fpk_sim::RunSummary> = iter
            .by_ref()
            .take(replications)
            .collect::<Result<Vec<_>>>()?;
        reports.push(CellReport {
            name: cell.scenario.name.clone(),
            index: cell.index,
            coords: cell.coords.clone(),
            seed: cell.seed,
            stats: crate::ensemble::aggregate(&runs)?,
        });
    }
    Ok(SweepReport {
        name: sweep.name().to_string(),
        base_seed: sweep.base_seed(),
        replications,
        axes: sweep
            .axes()
            .iter()
            .map(|a| AxisReport {
                name: a.name.clone(),
                values: a.values.clone(),
            })
            .collect(),
        cells: reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::sweep::Axis;
    use crate::test_env;
    use fpk_congestion::LinearExp;
    use fpk_sim::{Service, SimConfig, SourceSpec};

    fn sweep() -> Sweep {
        let base = Scenario::new(
            "exec",
            SimConfig {
                mu: 40.0,
                service: Service::Exponential,
                buffer: None,
                t_end: 12.0,
                warmup: 2.0,
                sample_interval: 0.1,
                seed: 0,
            },
            vec![SourceSpec::Rate {
                law: LinearExp::new(8.0, 0.5, 10.0),
                lambda0: 15.0,
                update_interval: 0.1,
                prop_delay: 0.01,
                poisson: true,
            }],
        );
        Sweep::new(base, 2024)
            .axis(Axis::mu(vec![30.0, 60.0]))
            .axis(Axis::flow_count(vec![1.0, 2.0]))
    }

    /// A cheap sweep for tests that care about grid mechanics, not DES
    /// fidelity: `cells × 1` label grid, sub-second simulated horizon.
    fn light_sweep(name: &'static str, cells: usize) -> Sweep {
        let base = Scenario::new(
            name,
            SimConfig {
                mu: 40.0,
                service: Service::Exponential,
                buffer: None,
                t_end: 2.0,
                warmup: 0.25,
                sample_interval: 0.1,
                seed: 0,
            },
            vec![SourceSpec::Rate {
                law: LinearExp::new(8.0, 0.5, 10.0),
                lambda0: 15.0,
                update_interval: 0.1,
                prop_delay: 0.01,
                poisson: true,
            }],
        );
        Sweep::new(base, 77).axis(Axis::label_only(
            "k",
            (0..cells).map(|i| i as f64).collect(),
        ))
    }

    #[test]
    fn run_indexed_orders_results() {
        for threads in [1, 2, 7] {
            let out = run_indexed(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(run_indexed(0, 4, |i| i).is_empty());
        // More workers than jobs clamps cleanly.
        assert_eq!(run_indexed(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn scoped_fallback_reuses_worker_state_within_a_call() {
        // Each scoped worker counts its own jobs in its scratch state;
        // the per-job output must still be a pure function of the
        // index, and every job must run exactly once across workers.
        // (The pooled path persists scratch *across* calls instead —
        // covered by `pool::worker_scratch_persists_across_batches`.)
        for threads in [1, 2, 5] {
            let out = run_indexed_scoped(
                17,
                threads,
                || 0usize,
                |count, i| {
                    *count += 1;
                    (i, *count)
                },
            );
            let indices: Vec<usize> = out.iter().map(|(i, _)| *i).collect();
            assert_eq!(indices, (0..17).collect::<Vec<_>>());
            let total: usize = out.iter().map(|(_, c)| *c).filter(|&c| c == 1).count();
            assert_eq!(total, threads.min(17), "each worker starts at 1");
        }
    }

    #[test]
    fn scoped_fallback_names_panicking_job() {
        for threads in [1, 3] {
            let caught = catch_unwind(|| {
                run_indexed_scoped(
                    9,
                    threads,
                    || (),
                    |(), i| {
                        assert!(i != 5, "fallback boom");
                        i
                    },
                )
            })
            .expect_err("the panicking job must propagate");
            let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("job 5"), "missing index: {msg}");
            assert!(msg.contains("fallback boom"), "missing payload: {msg}");
        }
    }

    #[test]
    fn thread_count_rejects_malformed_or_zero_override() {
        let _guard = test_env::lock();
        let _restore = test_env::VarGuard::capture("FPK_THREADS");
        for bad in ["zero", "0", "-3", "1.5"] {
            std::env::set_var("FPK_THREADS", bad);
            let caught = catch_unwind(thread_count);
            std::env::remove_var("FPK_THREADS");
            let msg = caught
                .expect_err("malformed FPK_THREADS must panic")
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(msg.contains(bad), "panic must quote the bad value: {msg}");
        }
        // Empty means "no override", like unset.
        std::env::set_var("FPK_THREADS", "");
        let n = thread_count();
        std::env::remove_var("FPK_THREADS");
        assert!(n >= 1);
        std::env::set_var("FPK_THREADS", "3");
        let n = thread_count();
        std::env::remove_var("FPK_THREADS");
        assert_eq!(n, 3);
    }

    #[test]
    fn sweep_output_bit_identical_across_thread_counts() {
        let s = sweep();
        let a = run_sweep_on(&s, 3, 1).unwrap();
        let b = run_sweep_on(&s, 3, 4).unwrap();
        let c = run_sweep_on(&s, 3, 13).unwrap();
        let ja = serde_json::to_string(&a).unwrap();
        assert_eq!(ja, serde_json::to_string(&b).unwrap());
        assert_eq!(ja, serde_json::to_string(&c).unwrap());
        assert_eq!(a.cells.len(), 4);
        assert_eq!(a.cells[3].stats.flow_throughput.len(), 2);
    }

    #[test]
    fn sweep_bit_identical_across_env_thread_counts_through_the_pool() {
        // The ISSUE's pool-determinism criterion: FPK_THREADS ∈ {1,3,7}
        // routed through the *environment* (the production path), all
        // through the persistent pool, must serialise identically.
        let _guard = test_env::lock();
        let _restore = test_env::VarGuard::capture("FPK_THREADS");
        let s = sweep();
        let mut outputs = Vec::new();
        for threads in ["1", "3", "7"] {
            std::env::set_var("FPK_THREADS", threads);
            let report = run_sweep(&s, 2);
            outputs.push(serde_json::to_string(&report.unwrap()).unwrap());
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }

    #[test]
    fn pooled_streaming_matches_unpooled_collected_bitwise() {
        // The pooled streaming path and the legacy collect-then-
        // aggregate fallback must agree to the bit, on the same sweep,
        // at several widths.
        let s = sweep();
        let pooled = serde_json::to_string(&run_sweep_on(&s, 3, 4).unwrap()).unwrap();
        for threads in [1, 4] {
            let legacy =
                serde_json::to_string(&run_sweep_unpooled(&s, 3, threads).unwrap()).unwrap();
            assert_eq!(pooled, legacy, "threads = {threads}");
        }
    }

    #[test]
    fn pool_kill_switch_preserves_results() {
        let _guard = test_env::lock();
        let _restore = test_env::VarGuard::capture("FPK_POOL");
        let s = sweep();
        let on = serde_json::to_string(&run_sweep_on(&s, 2, 3).unwrap()).unwrap();
        std::env::set_var("FPK_POOL", "off");
        let report = run_sweep_on(&s, 2, 3);
        assert_eq!(on, serde_json::to_string(&report.unwrap()).unwrap());
    }

    #[test]
    fn run_cells_custom_evaluator() {
        // A "fluid" sweep that ignores the DES bundle entirely.
        let _guard = test_env::lock();
        let out = run_cells(&sweep(), |cell| Ok(cell.coords[0] + cell.coords[1])).unwrap();
        assert_eq!(out, vec![31.0, 32.0, 61.0, 62.0]);
    }

    #[test]
    fn errors_propagate_deterministically() {
        let mut s = sweep();
        // Poison the base config so every cell fails validation.
        s = Sweep::new(
            {
                let mut base = s.cells()[0].scenario.clone();
                base.config.mu = -1.0;
                base
            },
            1,
        )
        .axis(Axis::flow_count(vec![1.0, 2.0]));
        assert!(run_sweep_on(&s, 2, 3).is_err());
    }

    #[test]
    fn shard_merge_matches_unsharded_bitwise() {
        let s = sweep();
        let whole = run_sweep_on(&s, 2, 3).unwrap();
        let parts: Vec<SweepReport> = (0..3)
            .map(|i| run_sweep_filtered(&s, 2, 2, Some(Shard::new(i, 3).unwrap())).unwrap())
            .collect();
        // Shards partition the grid.
        assert_eq!(parts.iter().map(|p| p.cells.len()).sum::<usize>(), 4);
        // Merge in scrambled order: grid order must be restored.
        let scrambled = vec![parts[2].clone(), parts[0].clone(), parts[1].clone()];
        let merged = SweepReport::merge(scrambled).unwrap();
        assert_eq!(
            serde_json::to_string(&whole).unwrap(),
            serde_json::to_string(&merged).unwrap()
        );
    }

    #[test]
    fn merge_rejects_gaps_duplicates_and_metadata_drift() {
        let s = sweep();
        let parts: Vec<SweepReport> = (0..2).map(|i| run_sweep_shard_on_two(&s, i)).collect();
        assert!(SweepReport::merge(Vec::new()).is_err(), "empty parts");
        assert!(
            SweepReport::merge(vec![parts[0].clone()]).is_err(),
            "missing shard leaves grid gaps"
        );
        assert!(
            SweepReport::merge(vec![parts[0].clone(), parts[0].clone()]).is_err(),
            "duplicate shard double-covers cells"
        );
        let mut drifted = parts[1].clone();
        drifted.base_seed ^= 1;
        assert!(
            SweepReport::merge(vec![parts[0].clone(), drifted]).is_err(),
            "metadata drift must be rejected"
        );
        // The honest pair still merges.
        assert!(SweepReport::merge(parts).is_ok());
    }

    fn run_sweep_shard_on_two(s: &Sweep, index: usize) -> SweepReport {
        run_sweep_filtered(s, 1, 2, Some(Shard::new(index, 2).unwrap())).unwrap()
    }

    #[test]
    fn shard_validates_and_names_files() {
        assert!(Shard::new(2, 2).is_err());
        assert!(Shard::new(0, 0).is_err());
        let sh = Shard::new(1, 4).unwrap();
        assert!(sh.owns(5) && sh.owns(1) && !sh.owns(4));
        assert_eq!(sh.file_stem("grid"), "grid.shard1of4");
    }

    #[test]
    fn stress_scale_grid_streams_exactly() {
        // A 10⁴-cell grid (tiny simulated horizon) through the pooled
        // streaming path: every cell must come back, in order, with its
        // own seed, and spot-checked cells must match an independently
        // computed reference — the stress tier is exact, not sampled.
        let s = light_sweep("stress", 10_000);
        let report = run_sweep_on(&s, 1, 4).unwrap();
        assert_eq!(report.cells.len(), 10_000);
        assert!(report
            .cells
            .iter()
            .enumerate()
            .all(|(i, c)| c.index == i && c.stats.replications == 1));
        for probe in [0usize, 137, 9_999] {
            let cell = &report.cells[probe];
            let reference = cell
                .scenario_free_reference(&s)
                .expect("probe cell re-runs standalone");
            assert_eq!(
                serde_json::to_string(&cell.stats).unwrap(),
                serde_json::to_string(&reference).unwrap(),
                "cell {probe} must equal its standalone run"
            );
        }
    }

    impl CellReport {
        /// Re-run this report's cell standalone (fresh arena, no pool)
        /// and aggregate — the reference value for stress spot-checks.
        fn scenario_free_reference(&self, s: &Sweep) -> Result<EnsembleStats> {
            let cell = s
                .cells()
                .into_iter()
                .find(|c| c.index == self.index)
                .expect("probe index in grid");
            Ensemble::new(1)?.run(&cell.scenario, cell.seed)
        }
    }

    #[test]
    fn cells_where_selects_by_coordinate() {
        let report = run_sweep_on(&sweep(), 1, 2).unwrap();
        let hits = report.cells_where(0, 30.0);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|c| c.coords[0] == 30.0));
    }

    #[test]
    fn cells_where_label_selects_by_axis_name() {
        let report = run_sweep_on(&sweep(), 1, 2).unwrap();
        let by_label = report.cells_where_label("flows", 2.0);
        assert_eq!(by_label.len(), 2);
        assert!(by_label.iter().all(|c| c.coords[1] == 2.0));
        // Same selection as the positional accessor.
        let by_index = report.cells_where(1, 2.0);
        let a: Vec<usize> = by_label.iter().map(|c| c.index).collect();
        let b: Vec<usize> = by_index.iter().map(|c| c.index).collect();
        assert_eq!(a, b);
        // Unknown axis names select nothing rather than panicking.
        assert!(report.cells_where_label("no_such_axis", 2.0).is_empty());
    }
}
