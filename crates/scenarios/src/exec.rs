//! Parallel sweep execution on `std::thread::scope`.
//!
//! Determinism policy (same contract as `fpk_core::montecarlo`): every
//! job is a pure function of its linear index — cell parameters and all
//! RNG seeds derive from `(base_seed, index)` — and results are merged
//! back in index order. Output is therefore **bit-identical for a fixed
//! base seed regardless of thread count**; the `FPK_THREADS` environment
//! variable only changes wall-clock time.
//!
//! Execution model: workers *stride* the index space (worker `w` takes
//! jobs `w, w+T, w+2T, …`), collect into per-worker stripe vectors, and
//! the stripes are interleaved back into index order after the join —
//! no per-job channel sends, no index tagging, no sort. Each worker also
//! owns one reusable [`NetArena`], so DES replications after its first
//! run allocate no simulator scratch state.

use crate::ensemble::{aggregate, Ensemble, EnsembleStats};
use crate::sweep::{Cell, Sweep};
use fpk_numerics::Result;
use fpk_sim::{NetArena, RunSummary};
use serde::{Deserialize, Serialize};

/// Worker count: the `FPK_THREADS` override when set to a positive
/// integer, otherwise the machine's available parallelism.
#[must_use]
pub fn thread_count() -> usize {
    std::env::var("FPK_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// Run `n_jobs` independent jobs on `threads` workers and return their
/// results in job order.
///
/// Worker `w` strides the index space (`w, w+threads, w+2·threads, …`)
/// and collects its results into one stripe vector; the stripes are
/// interleaved back into index order after the join. Compared to the
/// old per-job `mpsc` sends this does no per-result channel traffic, no
/// `(index, value)` tagging, and no final sort — and the output is
/// bit-identical regardless of thread count as long as `f` is a pure
/// function of the index.
pub fn run_indexed<T, F>(n_jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(n_jobs, threads, || (), |(), i| f(i))
}

/// [`run_indexed`] with per-worker scratch state: every worker calls
/// `init` once and threads the value through all of its jobs. This is
/// how the sweep runner reuses one [`NetArena`] per worker across many
/// replications. Determinism contract: `f` must be a pure function of
/// the *index* — the scratch state may cache allocations but must not
/// leak information between jobs.
pub fn run_indexed_with<T, C, I, F>(n_jobs: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, usize) -> T + Sync,
{
    if n_jobs == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n_jobs);
    if threads == 1 {
        let mut ctx = init();
        return (0..n_jobs).map(|i| f(&mut ctx, i)).collect();
    }
    let stripes: Vec<Vec<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let init = &init;
                let f = &f;
                scope.spawn(move || {
                    let mut ctx = init();
                    let mut stripe = Vec::with_capacity(n_jobs / threads + 1);
                    let mut i = w;
                    while i < n_jobs {
                        stripe.push(f(&mut ctx, i));
                        i += threads;
                    }
                    stripe
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut iters: Vec<_> = stripes.into_iter().map(Vec::into_iter).collect();
    (0..n_jobs)
        .map(|i| iters[i % threads].next().expect("stripe exhausted"))
        .collect()
}

/// Evaluate every cell of a sweep with a custom function, in parallel,
/// results in cell order. For sweeps whose cells are not plain DES runs
/// (fluid models, DDEs, theory curves).
///
/// # Errors
/// Propagates the first failing cell (by cell order).
pub fn run_cells<T, F>(sweep: &Sweep, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(&Cell) -> Result<T> + Sync,
{
    let cells = sweep.cells();
    run_indexed(cells.len(), thread_count(), |i| f(&cells[i]))
        .into_iter()
        .collect()
}

/// One axis of a [`SweepReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AxisReport {
    /// Axis name.
    pub name: String,
    /// Grid points along the axis.
    pub values: Vec<f64>,
}

/// One aggregated cell of a [`SweepReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellReport {
    /// Cell name (`base[axis=value,…]`).
    pub name: String,
    /// Linear row-major index in the grid.
    pub index: usize,
    /// Axis values at this cell, in axis order.
    pub coords: Vec<f64>,
    /// The cell's derived seed (replication seeds derive from it).
    pub seed: u64,
    /// Replication-aggregated statistics.
    pub stats: EnsembleStats,
}

/// The JSON artifact a sweep run produces: one entry per cell, plus
/// enough metadata (axes, seeds, replication count) to reproduce it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// Sweep (base scenario) name; also the artifact file stem.
    pub name: String,
    /// Base seed all cell seeds derive from.
    pub base_seed: u64,
    /// Replications per cell.
    pub replications: usize,
    /// Axis metadata in declaration order.
    pub axes: Vec<AxisReport>,
    /// Aggregated cells in row-major grid order.
    pub cells: Vec<CellReport>,
}

impl SweepReport {
    /// Write the report to `<results dir>/<name>.json` via the shared
    /// artifact writer and return the path. The directory defaults to
    /// `results/` and honours the `FPK_RESULTS_DIR` environment override
    /// (see [`crate::artifact::results_dir`]).
    pub fn write(&self) -> std::path::PathBuf {
        crate::artifact::write_json(&self.name, self)
    }

    /// The cells whose coordinate on axis `k` equals `v` (within 1e-12).
    #[must_use]
    pub fn cells_where(&self, axis: usize, v: f64) -> Vec<&CellReport> {
        self.cells
            .iter()
            .filter(|c| c.coords.get(axis).is_some_and(|&x| (x - v).abs() < 1e-12))
            .collect()
    }

    /// [`Self::cells_where`], selecting the axis by *name* instead of
    /// position — robust against axes being reordered or inserted.
    /// Returns an empty vector when no axis carries that name.
    #[must_use]
    pub fn cells_where_label(&self, axis_name: &str, v: f64) -> Vec<&CellReport> {
        self.axes
            .iter()
            .position(|a| a.name == axis_name)
            .map_or_else(Vec::new, |k| self.cells_where(k, v))
    }
}

/// Run a sweep with `replications` seeds per cell on the default worker
/// count ([`thread_count`]).
///
/// # Errors
/// Propagates the first failing replication (in deterministic job
/// order) and ensemble-validation errors.
pub fn run_sweep(sweep: &Sweep, replications: usize) -> Result<SweepReport> {
    run_sweep_on(sweep, replications, thread_count())
}

/// [`run_sweep`] with an explicit worker count. Parallelism is over
/// `(cell, replication)` jobs, so even a single-cell sweep with many
/// replications scales.
///
/// # Errors
/// See [`run_sweep`].
pub fn run_sweep_on(sweep: &Sweep, replications: usize, threads: usize) -> Result<SweepReport> {
    // Validates `replications >= 1`.
    Ensemble::new(replications)?;
    let cells = sweep.cells();
    let n_jobs = cells.len() * replications;
    // One arena per worker: every replication after a worker's first
    // reuses its event-queue, FIFO and trace buffers (run_seeded_in).
    let summaries: Vec<Result<RunSummary>> =
        run_indexed_with(n_jobs, threads, NetArena::new, |arena, job| {
            let cell = &cells[job / replications];
            let r = job % replications;
            cell.scenario
                .run_seeded_in(arena, Ensemble::replication_seed(cell.seed, r))
        });
    let mut reports = Vec::with_capacity(cells.len());
    let mut iter = summaries.into_iter();
    for cell in cells {
        let runs: Vec<RunSummary> = iter
            .by_ref()
            .take(replications)
            .collect::<Result<Vec<_>>>()?;
        reports.push(CellReport {
            name: cell.scenario.name.clone(),
            index: cell.index,
            coords: cell.coords.clone(),
            seed: cell.seed,
            stats: aggregate(&runs)?,
        });
    }
    Ok(SweepReport {
        name: sweep.name().to_string(),
        base_seed: sweep.base_seed(),
        replications,
        axes: sweep
            .axes()
            .iter()
            .map(|a| AxisReport {
                name: a.name.clone(),
                values: a.values.clone(),
            })
            .collect(),
        cells: reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::sweep::Axis;
    use fpk_congestion::LinearExp;
    use fpk_sim::{Service, SimConfig, SourceSpec};

    fn sweep() -> Sweep {
        let base = Scenario::new(
            "exec",
            SimConfig {
                mu: 40.0,
                service: Service::Exponential,
                buffer: None,
                t_end: 12.0,
                warmup: 2.0,
                sample_interval: 0.1,
                seed: 0,
            },
            vec![SourceSpec::Rate {
                law: LinearExp::new(8.0, 0.5, 10.0),
                lambda0: 15.0,
                update_interval: 0.1,
                prop_delay: 0.01,
                poisson: true,
            }],
        );
        Sweep::new(base, 2024)
            .axis(Axis::mu(vec![30.0, 60.0]))
            .axis(Axis::flow_count(vec![1.0, 2.0]))
    }

    #[test]
    fn run_indexed_orders_results() {
        for threads in [1, 2, 7] {
            let out = run_indexed(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(run_indexed(0, 4, |i| i).is_empty());
        // More workers than jobs clamps cleanly.
        assert_eq!(run_indexed(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn run_indexed_with_reuses_worker_state() {
        // Each worker counts its own jobs in its scratch state; the
        // per-job output must still be a pure function of the index,
        // and every job must run exactly once across all workers.
        for threads in [1, 2, 5] {
            let out = run_indexed_with(
                17,
                threads,
                || 0usize,
                |count, i| {
                    *count += 1;
                    (i, *count)
                },
            );
            let indices: Vec<usize> = out.iter().map(|(i, _)| *i).collect();
            assert_eq!(indices, (0..17).collect::<Vec<_>>());
            let total: usize = out.iter().map(|(_, c)| *c).filter(|&c| c == 1).count();
            assert_eq!(total, threads.min(17), "each worker starts at 1");
        }
    }

    #[test]
    fn sweep_output_bit_identical_across_thread_counts() {
        let s = sweep();
        let a = run_sweep_on(&s, 3, 1).unwrap();
        let b = run_sweep_on(&s, 3, 4).unwrap();
        let c = run_sweep_on(&s, 3, 13).unwrap();
        let ja = serde_json::to_string(&a).unwrap();
        assert_eq!(ja, serde_json::to_string(&b).unwrap());
        assert_eq!(ja, serde_json::to_string(&c).unwrap());
        assert_eq!(a.cells.len(), 4);
        assert_eq!(a.cells[3].stats.flow_throughput.len(), 2);
    }

    #[test]
    fn run_cells_custom_evaluator() {
        // A "fluid" sweep that ignores the DES bundle entirely.
        let out = run_cells(&sweep(), |cell| Ok(cell.coords[0] + cell.coords[1])).unwrap();
        assert_eq!(out, vec![31.0, 32.0, 61.0, 62.0]);
    }

    #[test]
    fn errors_propagate_deterministically() {
        let mut s = sweep();
        // Poison the base config so every cell fails validation.
        s = Sweep::new(
            {
                let mut base = s.cells()[0].scenario.clone();
                base.config.mu = -1.0;
                base
            },
            1,
        )
        .axis(Axis::flow_count(vec![1.0, 2.0]));
        assert!(run_sweep_on(&s, 2, 3).is_err());
    }

    #[test]
    fn cells_where_selects_by_coordinate() {
        let report = run_sweep_on(&sweep(), 1, 2).unwrap();
        let hits = report.cells_where(0, 30.0);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|c| c.coords[0] == 30.0));
    }

    #[test]
    fn cells_where_label_selects_by_axis_name() {
        let report = run_sweep_on(&sweep(), 1, 2).unwrap();
        let by_label = report.cells_where_label("flows", 2.0);
        assert_eq!(by_label.len(), 2);
        assert!(by_label.iter().all(|c| c.coords[1] == 2.0));
        // Same selection as the positional accessor.
        let by_index = report.cells_where(1, 2.0);
        let a: Vec<usize> = by_label.iter().map(|c| c.index).collect();
        let b: Vec<usize> = by_index.iter().map(|c| c.index).collect();
        assert_eq!(a, b);
        // Unknown axis names select nothing rather than panicking.
        assert!(report.cells_where_label("no_such_axis", 2.0).is_empty());
    }
}
