//! Vendored minimal subset of [`criterion`](https://crates.io/crates/criterion):
//! enough of the API (`Criterion`, `BenchmarkGroup`, `Bencher`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`) to compile and run
//! the workspace's `harness = false` benches offline.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors the few externals it needs (see `DESIGN.md`,
//! §Vendoring). Statistics are deliberately simple — per-sample medians,
//! no outlier analysis or HTML reports — but timings are real and the
//! output is stable enough to compare run-over-run.
//!
//! Two environment variables tailor a run (used by
//! `scripts/bench_baseline.sh`):
//!
//! * `FPK_BENCH_QUICK=1` — cut warm-up and sample counts hard, for smoke
//!   coverage and baseline JSON snapshots rather than careful timing.
//! * `FPK_BENCH_JSON=<path>` — append one JSON object per benchmark to
//!   `<path>` (JSON Lines), machine-readable for trend tracking.
//!
//! ```
//! let mut c = criterion::Criterion::default().sample_size(10);
//! c.bench_function("noop_add", |b| b.iter(|| std::hint::black_box(1u64) + 1));
//! ```

#![forbid(unsafe_code)]

use std::fmt;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (the real crate deprecates it
/// in favour of `std::hint::black_box`, which the workspace benches use).
pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group.bench_with_input(BenchmarkId::new("name", param), ..)`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identify the benchmark by its parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    quick: bool,
}

impl Bencher {
    /// Time `routine`, recording `sample_size` samples of an adaptively
    /// chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the per-sample iteration count so one sample
        // costs ~2 ms (20 µs in quick mode).
        let target = if self.quick {
            Duration::from_micros(20)
        } else {
            Duration::from_millis(2)
        };
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= target || iters >= 1 << 30 {
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 8
            } else {
                let scale = target.as_secs_f64() / elapsed.as_secs_f64();
                (iters as f64 * scale.clamp(1.5, 8.0)).ceil() as u64
            };
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples
                .push(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
struct Record {
    id: String,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
}

/// Top-level benchmark driver (vendored subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    quick: bool,
    records: Vec<Record>,
}

fn quick_mode() -> bool {
    std::env::var("FPK_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            quick: quick_mode(),
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the measurement time. Accepted for API compatibility; the
    /// vendored harness sizes samples adaptively instead.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    fn effective_sample_size(&self) -> usize {
        if self.quick {
            self.sample_size.min(5)
        } else {
            self.sample_size
        }
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.effective_sample_size();
        let quick = self.quick;
        self.run_one(id.to_string(), sample_size, quick, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: String,
        sample_size: usize,
        quick: bool,
        mut f: F,
    ) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size,
            quick,
        };
        f(&mut bencher);
        let mut s = bencher.samples;
        if s.is_empty() {
            // The closure never called `iter` — record nothing.
            return;
        }
        s.sort_by(|a, b| a.total_cmp(b));
        let rec = Record {
            median_ns: s[s.len() / 2],
            min_ns: s[0],
            max_ns: s[s.len() - 1],
            samples: s.len(),
            id,
        };
        println!(
            "{:<48} time: [{} .. {} .. {}]  ({} samples)",
            rec.id,
            fmt_ns(rec.min_ns),
            fmt_ns(rec.median_ns),
            fmt_ns(rec.max_ns),
            rec.samples
        );
        self.records.push(rec);
    }

    /// Flush collected measurements to `FPK_BENCH_JSON` (JSON Lines), if set.
    ///
    /// Called by the `criterion_group!` expansion after the targets run.
    pub fn finalize(&mut self) {
        let Ok(path) = std::env::var("FPK_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let Ok(mut file) = OpenOptions::new().create(true).append(true).open(&path) else {
            eprintln!("criterion (vendored): cannot open {path}");
            return;
        };
        for r in &self.records {
            // Hand-rolled JSON keeps this crate dependency-free.
            let _ = writeln!(
                file,
                "{{\"id\":{:?},\"median_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{}}}",
                r.id, r.median_ns, r.min_ns, r.max_ns, r.samples
            );
        }
        self.records.clear();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named collection of benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group,
    /// overriding the `Criterion`-level setting. Unlike the global
    /// default, an explicit group override is honoured even in quick
    /// mode (`FPK_BENCH_QUICK=1`): a group that opts in has decided its
    /// margins are too small for the five-sample smoke cap to resolve,
    /// and takes responsibility for the extra runtime.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self
            .sample_size
            .unwrap_or_else(|| self.criterion.effective_sample_size());
        let quick = self.criterion.quick;
        self.criterion.run_one(full, sample_size, quick, f);
        self
    }

    /// Run one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// Declare a group runner `fn $name()` over benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
            criterion.finalize();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (`--bench`,
            // `--test`, filters); the vendored harness runs everything and
            // ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("spin", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        assert_eq!(c.records.len(), 1);
        assert!(c.records[0].median_ns > 0.0);
    }

    #[test]
    fn group_ids_are_prefixed() {
        let mut c = Criterion::default().sample_size(3);
        {
            let mut g = c.benchmark_group("grp");
            g.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| {
                b.iter(|| black_box(n) * 2)
            });
            g.finish();
        }
        assert_eq!(c.records[0].id, "grp/8");
    }

    #[test]
    fn group_sample_size_overrides_even_in_quick_mode() {
        let mut c = Criterion {
            sample_size: 100,
            quick: true,
            records: Vec::new(),
        };
        {
            let mut g = c.benchmark_group("grp");
            g.bench_function("capped", |b| b.iter(|| black_box(1u64) + 1));
            g.sample_size(9);
            g.bench_function("overridden", |b| b.iter(|| black_box(1u64) + 1));
            g.finish();
        }
        // Without an override, quick mode caps at 5 samples; the group
        // override stands as given.
        assert_eq!(c.records[0].samples, 5);
        assert_eq!(c.records[1].samples, 9);
    }
}
