//! Vendored minimal subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API, just large enough for this workspace: `StdRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen` for the primitive types the
//! simulators draw.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors the few externals it needs (see `DESIGN.md`,
//! §Vendoring). The generator here is xoshiro256++ seeded via SplitMix64 —
//! not the ChaCha12 stream of the real `StdRng`, so absolute sample paths
//! differ from upstream `rand`, but every consumer in this workspace only
//! requires determinism-per-seed and good statistical quality, which this
//! provides.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! let (x, y): (f64, f64) = (a.gen(), b.gen());
//! assert_eq!(x, y);
//! assert!((0.0..1.0).contains(&x));
//! ```

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word from the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling conversions from a raw word stream (stand-in for
/// `Standard: Distribution<T>`).
pub trait SampleUniform: Sized {
    /// Draw one value from `rng`.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleUniform for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleUniform for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleUniform for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience methods on any [`RngCore`] (the `rand::Rng` subset).
pub trait Rng: RngCore {
    /// Sample a value of type `T` (uniform over its natural domain;
    /// `[0, 1)` for floats).
    fn gen<T: SampleUniform>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Uniform draw from `[low, high)`.
    fn gen_range(&mut self, range: core::ops::Range<f64>) -> f64 {
        range.start + (range.end - range.start) * self.gen::<f64>()
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), state-initialised with SplitMix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
