//! Derive macros for the vendored `serde` subset.
//!
//! Hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote` — the
//! build container has no crates.io access). Supports exactly the shapes
//! this workspace derives on: non-generic structs with named fields,
//! tuple structs, unit structs, and enums whose variants are unit, tuple
//! or struct-like. Anything else produces a `compile_error!` naming the
//! unsupported construct rather than silently mis-serialising.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

/// Derive the vendored `serde::Serialize` (serialisation into `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derive the vendored `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy)]
enum Which {
    Serialize,
    Deserialize,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => render(&name, &shape, which).parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kind = match ident_at(&toks, i) {
        Some(k) if k == "struct" || k == "enum" => k,
        other => return Err(format!("serde_derive: expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = ident_at(&toks, i).ok_or("serde_derive: missing type name")?;
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive: generic type `{name}` is not supported by the vendored subset"
        ));
    }
    if kind == "struct" {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct(count_tuple_fields(g.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            other => Err(format!("serde_derive: unsupported struct body {other:?}")),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("serde_derive: unsupported enum body {other:?}")),
        }
    }
}

fn ident_at(toks: &[TokenTree], i: usize) -> Option<String> {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Skip `#[...]` attributes (including doc comments) and `pub` /
/// `pub(...)` visibility starting at `*i`.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match (toks.get(*i), toks.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            (Some(TokenTree::Ident(id)), _) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Advance past a type (or discriminant expression) until a top-level `,`,
/// tracking `<`/`>` nesting, which are bare puncts rather than groups.
fn skip_to_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_at(&toks, i)
            .ok_or_else(|| format!("serde_derive: expected field name, got {:?}", toks[i]))?
            .to_string();
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "serde_derive: expected `:` after `{name}`, got {other:?}"
                ))
            }
        }
        skip_to_comma(&toks, &mut i);
        i += 1; // past the comma (or end)
        fields.push(name);
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_to_comma(&toks, &mut i);
        i += 1;
        n += 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_at(&toks, i)
            .ok_or_else(|| format!("serde_derive: expected variant name, got {:?}", toks[i]))?
            .to_string();
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional `= discriminant`, then the trailing comma.
        skip_to_comma(&toks, &mut i);
        i += 1;
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn render(name: &str, shape: &Shape, which: Which) -> String {
    if let Which::Deserialize = which {
        return format!("impl ::serde::Deserialize for {name} {{}}");
    }
    let body = match shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::NamedStruct(fields) => {
            let mut s = String::from("::serde::Value::Object(vec![");
            for f in fields {
                write!(
                    s,
                    "(String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
                )
                .unwrap();
            }
            s.push_str("])");
            s
        }
        Shape::TupleStruct(n) => {
            let mut s = String::from("::serde::Value::Array(vec![");
            for k in 0..*n {
                write!(s, "::serde::Serialize::to_value(&self.{k}),").unwrap();
            }
            s.push_str("])");
            s
        }
        Shape::Enum(variants) => {
            let mut s = String::from("match self {");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        write!(
                            s,
                            "{name}::{vn} => ::serde::Value::Str(String::from({vn:?})),"
                        )
                        .unwrap();
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        write!(
                            s,
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(String::from({vn:?}), ::serde::Value::Array(vec![{}]))]),",
                            binds.join(","),
                            binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect::<Vec<_>>()
                                .join(",")
                        )
                        .unwrap();
                    }
                    VariantShape::Named(fields) => {
                        write!(
                            s,
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![(String::from({vn:?}), ::serde::Value::Object(vec![{}]))]),",
                            fields.join(","),
                            fields
                                .iter()
                                .map(|f| format!(
                                    "(String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                ))
                                .collect::<Vec<_>>()
                                .join(",")
                        )
                        .unwrap();
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}
