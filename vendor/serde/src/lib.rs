//! Vendored minimal subset of [`serde`](https://serde.rs): the
//! `Serialize`/`Deserialize` traits plus derive macros, backed by a small
//! self-describing [`Value`] tree that `serde_json` renders.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors the few externals it needs (see `DESIGN.md`,
//! §Vendoring). Unlike real serde's visitor-based zero-copy design, this
//! subset serialises through an owned [`Value`] — entirely adequate for
//! the workspace's only use: writing experiment artefacts as JSON.
//!
//! ```
//! use serde::Serialize;
//! #[derive(Serialize)]
//! struct P { x: f64, tag: String }
//! let v = serde::Serialize::to_value(&P { x: 1.5, tag: "a".into() });
//! assert_eq!(v.get("x").and_then(serde::Value::as_f64), Some(1.5));
//! ```

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialised value (the JSON data model, order-preserving).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept apart so `u64::MAX` round-trips).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; `Vec` rather than a map so field order is declaration order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view (ints widen losslessly enough for test assertions).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }
}

/// Types that can serialise themselves into a [`Value`].
pub trait Serialize {
    /// Convert `self` into the serialised tree.
    fn to_value(&self) -> Value;
}

/// Marker for types the derive macro tagged as deserialisable.
///
/// The workspace never deserialises (artefacts are write-only JSON), so
/// this carries no methods; it exists so `#[derive(Deserialize)]` and
/// `T: Deserialize` bounds compile against the vendored subset.
pub trait Deserialize {}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
}
macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}

ser_int!(i8, i16, i32, i64, isize);
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {}
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!((-2i32).to_value(), Value::Int(-2));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_string().to_value(), Value::Str("hi".into()));
        assert_eq!(Option::<f64>::None.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(
            (1u8, 2.0f64).to_value(),
            Value::Array(vec![Value::UInt(1), Value::Float(2.0)])
        );
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(1.0));
        assert!(v.get("b").is_none());
    }
}
