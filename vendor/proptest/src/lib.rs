//! Vendored minimal subset of [`proptest`](https://proptest-rs.github.io/):
//! the `proptest!` test macro, numeric-range / tuple / `collection::vec` /
//! `sample::select` strategies, `prop_assert!`, and `ProptestConfig`.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors the few externals it needs (see `DESIGN.md`,
//! §Vendoring). Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs (every
//!   strategy value is `Debug`) but is not minimised.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   own name (overridable via `PROPTEST_SEED`), so failures reproduce
//!   exactly and CI runs are stable.
//!
//! ```
//! use proptest::prelude::*;
//! let mut rng = proptest::test_rng("demo");
//! let (x, n) = ((-10.0f64..10.0).generate(&mut rng),
//!               prop::collection::vec(0.0f64..1.0, 2..5).generate(&mut rng));
//! assert!((-10.0..10.0).contains(&x) && n.len() >= 2);
//! ```

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (vendored subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Test-case generators. Unlike real proptest there is no value tree:
/// a strategy samples a concrete value directly from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;
    /// Sample one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        self.start + (self.end - self.start) * rng.gen::<f64>()
    }
}

impl Strategy for std::ops::Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut StdRng) -> i64 {
        let span = (self.end - self.start) as u64;
        self.start + (rng.gen::<u64>() % span.max(1)) as i64
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut StdRng) -> usize {
        let span = self.end.saturating_sub(self.start);
        self.start + (rng.gen::<u64>() % span.max(1) as u64) as usize
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// `prop::collection` — strategies over containers.
pub mod collection {
    use super::{StdRng, Strategy};

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(element_strategy, min_len..max_len)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::sample` — strategies picking among given values.
pub mod sample {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// `select(vec![a, b, c])` — uniform choice among the options.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = (rng.gen::<u64>() % self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }
}

/// Build the deterministic per-test RNG (exposed for the macro expansion).
#[must_use]
pub fn test_rng(test_name: &str) -> StdRng {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(s) = seed.parse::<u64>() {
            return StdRng::seed_from_u64(s);
        }
    }
    // FNV-1a over the test name: stable across runs and rustc versions.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    /// The `prop::` path alias (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Assert inside a property: on failure, panics with the formatted message
/// (no shrinking in the vendored subset).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(, $($fmt:tt)+)?) => {
        assert_eq!($a, $b $(, $($fmt)+)?);
    };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)`
/// expands to a normal `#[test]` running `cases` sampled instances.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])+
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let __inputs = format!(
                        concat!("case {} of ", stringify!($name), ":", $(" ", stringify!($arg), "={:?}"),+),
                        __case, $(&$arg),+
                    );
                    // Run the body; if it panics the harness prints the
                    // inputs via the panic payload below.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                    if let Err(payload) = result {
                        eprintln!("proptest (vendored): failing {__inputs}");
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])+
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])+
                fn $name ( $($arg in $strategy),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.5f64..2.5, n in 3usize..9) {
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vec_and_select_compose(
            v in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..5),
            pick in prop::sample::select(vec![10u64, 20, 30]),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&(a, b)| (0.0..1.0).contains(&a) && (0.0..1.0).contains(&b)));
            prop_assert!(pick % 10 == 0);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        use rand::Rng;
        let a: f64 = crate::test_rng("t").gen();
        let b: f64 = crate::test_rng("t").gen();
        assert_eq!(a, b);
    }
}
