//! Vendored minimal subset of `serde_json`: render any
//! `serde::Serialize` as JSON text. Write-only — the workspace only emits
//! experiment artefacts; it never parses JSON back.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors the few externals it needs (see `DESIGN.md`,
//! §Vendoring).
//!
//! ```
//! #[derive(serde::Serialize)]
//! struct Row { n: usize, err: f64 }
//! let json = serde_json::to_string_pretty(&Row { n: 3, err: 0.25 }).unwrap();
//! assert!(json.contains("\"n\": 3"));
//! assert!(json.contains("\"err\": 0.25"));
//! ```

#![forbid(unsafe_code)]

use serde::{Serialize, Value};
use std::fmt;

/// Serialisation error (kept for API compatibility; the vendored encoder
/// itself is total and never fails).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching the real crate's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialise `value` as compact single-line JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialise `value` as human-readable JSON indented with two spaces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.len(),
            Layout { indent, depth },
            ('[', ']'),
            items.iter().map(|it| {
                move |o: &mut String, ind: Option<usize>, d: usize| write_value(o, it, ind, d)
            }),
        ),
        Value::Object(fields) => write_seq(
            out,
            fields.len(),
            Layout { indent, depth },
            ('{', '}'),
            fields.iter().map(|(k, val)| {
                move |o: &mut String, ind: Option<usize>, d: usize| {
                    write_escaped(o, k);
                    o.push(':');
                    if ind.is_some() {
                        o.push(' ');
                    }
                    write_value(o, val, ind, d);
                }
            }),
        ),
    }
}

#[derive(Clone, Copy)]
struct Layout {
    indent: Option<usize>,
    depth: usize,
}

fn write_seq<F, I>(out: &mut String, len: usize, layout: Layout, brackets: (char, char), items: I)
where
    F: FnOnce(&mut String, Option<usize>, usize),
    I: Iterator<Item = F>,
{
    let Layout { indent, depth } = layout;
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (k, write_item) in items.enumerate() {
        if k > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, indent, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(brackets.1);
}

/// JSON has no non-finite numbers; mirror the lenient encoders (and
/// Python's default) by emitting `null` for them rather than erroring —
/// experiment artefacts should record "no value" instead of aborting.
fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // `{}` prints integral floats without a decimal point; keep the
        // float-ness visible so readers don't reparse 1.0 as an int.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    #[test]
    fn compact_and_pretty() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::Int(1), Value::Float(2.5)]),
            ),
            ("b".into(), Value::Str("x\"y".into())),
        ]);
        struct W(Value);
        impl Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        assert_eq!(
            to_string(&W(v.clone())).unwrap(),
            r#"{"a":[1,2.5],"b":"x\"y"}"#
        );
        let pretty = to_string_pretty(&W(v)).unwrap();
        assert!(
            pretty.contains("\"a\": [\n    1,\n    2.5\n  ]"),
            "{pretty}"
        );
    }

    #[test]
    fn floats_stay_floats_and_nonfinite_is_null() {
        struct F(f64);
        impl Serialize for F {
            fn to_value(&self) -> Value {
                Value::Float(self.0)
            }
        }
        assert_eq!(to_string(&F(1.0)).unwrap(), "1.0");
        assert_eq!(to_string(&F(f64::NAN)).unwrap(), "null");
        assert_eq!(to_string(&F(f64::INFINITY)).unwrap(), "null");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Vec::<f64>::new()).unwrap(), "[]");
    }
}
