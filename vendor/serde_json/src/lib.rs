//! Vendored minimal subset of `serde_json`: render any
//! `serde::Serialize` as JSON text, and parse JSON text back into the
//! self-describing [`serde::Value`] tree ([`from_str`]). The typed
//! `Deserialize` path of real serde is not implemented — callers that
//! read artefacts back (e.g. the sweep-shard merger in `fpk-scenarios`)
//! map the `Value` tree into their structs by hand.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors the few externals it needs (see `DESIGN.md`,
//! §Vendoring).
//!
//! Floats are written with Rust's shortest-roundtrip `{}` formatting, so
//! `write → from_str → write` reproduces artefact bytes exactly — the
//! property the cross-process sweep-shard merge relies on.
//!
//! ```
//! #[derive(serde::Serialize)]
//! struct Row { n: usize, err: f64 }
//! let json = serde_json::to_string_pretty(&Row { n: 3, err: 0.25 }).unwrap();
//! assert!(json.contains("\"n\": 3"));
//! assert!(json.contains("\"err\": 0.25"));
//! let back = serde_json::from_str(&json).unwrap();
//! assert_eq!(back.get("n").and_then(serde::Value::as_f64), Some(3.0));
//! ```

#![forbid(unsafe_code)]

use serde::{Serialize, Value};
use std::fmt;

/// Serialisation error (kept for API compatibility; the vendored encoder
/// itself is total and never fails).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching the real crate's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialise `value` as compact single-line JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialise `value` as human-readable JSON indented with two spaces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.len(),
            Layout { indent, depth },
            ('[', ']'),
            items.iter().map(|it| {
                move |o: &mut String, ind: Option<usize>, d: usize| write_value(o, it, ind, d)
            }),
        ),
        Value::Object(fields) => write_seq(
            out,
            fields.len(),
            Layout { indent, depth },
            ('{', '}'),
            fields.iter().map(|(k, val)| {
                move |o: &mut String, ind: Option<usize>, d: usize| {
                    write_escaped(o, k);
                    o.push(':');
                    if ind.is_some() {
                        o.push(' ');
                    }
                    write_value(o, val, ind, d);
                }
            }),
        ),
    }
}

#[derive(Clone, Copy)]
struct Layout {
    indent: Option<usize>,
    depth: usize,
}

fn write_seq<F, I>(out: &mut String, len: usize, layout: Layout, brackets: (char, char), items: I)
where
    F: FnOnce(&mut String, Option<usize>, usize),
    I: Iterator<Item = F>,
{
    let Layout { indent, depth } = layout;
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (k, write_item) in items.enumerate() {
        if k > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, indent, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(brackets.1);
}

/// JSON has no non-finite numbers; mirror the lenient encoders (and
/// Python's default) by emitting `null` for them rather than erroring —
/// experiment artefacts should record "no value" instead of aborting.
fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // `{}` prints integral floats without a decimal point; keep the
        // float-ness visible so readers don't reparse 1.0 as an int.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Parse JSON text into a [`Value`] tree.
///
/// Number mapping mirrors the writer: tokens with a `.` or exponent
/// become `Value::Float`, other non-negative integers `Value::UInt`
/// (so `u64` seeds round-trip exactly), negative integers `Value::Int`.
/// Integers too large for those types fall back to `Value::Float`.
///
/// # Errors
/// [`Error`] with a byte offset when the input is not valid JSON or has
/// trailing non-whitespace.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("unexpected token"))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Value::Null),
            Some(b't') => self.eat("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for the BMP
                            // names this workspace writes; reject them
                            // loudly rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unpaired surrogate in \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number {text:?} at byte {start}")))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    #[test]
    fn compact_and_pretty() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::Int(1), Value::Float(2.5)]),
            ),
            ("b".into(), Value::Str("x\"y".into())),
        ]);
        struct W(Value);
        impl Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        assert_eq!(
            to_string(&W(v.clone())).unwrap(),
            r#"{"a":[1,2.5],"b":"x\"y"}"#
        );
        let pretty = to_string_pretty(&W(v)).unwrap();
        assert!(
            pretty.contains("\"a\": [\n    1,\n    2.5\n  ]"),
            "{pretty}"
        );
    }

    #[test]
    fn parse_roundtrips_writer_output_byte_for_byte() {
        let v = Value::Object(vec![
            ("seed".into(), Value::UInt(u64::MAX)),
            ("neg".into(), Value::Int(-7)),
            (
                "xs".into(),
                Value::Array(vec![
                    Value::Float(2.5),
                    Value::Float(1.0),
                    Value::Float(0.1 + 0.2),
                    Value::Float(-0.0),
                    Value::Null,
                    Value::Bool(true),
                ]),
            ),
            (
                "name".into(),
                Value::Str("grid[mu=20,flows=2]\n\"q\"".into()),
            ),
            ("empty".into(), Value::Object(vec![])),
        ]);
        struct W(Value);
        impl Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        for render in [to_string, to_string_pretty] {
            let text = render(&W(v.clone())).unwrap();
            let parsed = from_str(&text).unwrap();
            // Reserialising the parsed tree reproduces the bytes exactly
            // (shortest-roundtrip floats), which is what the sweep-shard
            // merge relies on.
            assert_eq!(render(&W(parsed)).unwrap(), text);
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{\"a\":1} trailing",
            "nul",
            "[1 2]",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_maps_numbers_like_the_writer() {
        let v = from_str("[0, 18446744073709551615, -3, 2.5, 1e3, 0.000000000001]").unwrap();
        let Value::Array(items) = v else { panic!() };
        assert_eq!(items[0], Value::UInt(0));
        assert_eq!(items[1], Value::UInt(u64::MAX));
        assert_eq!(items[2], Value::Int(-3));
        assert_eq!(items[3], Value::Float(2.5));
        assert_eq!(items[4], Value::Float(1000.0));
        assert_eq!(items[5], Value::Float(1e-12));
    }

    #[test]
    fn floats_stay_floats_and_nonfinite_is_null() {
        struct F(f64);
        impl Serialize for F {
            fn to_value(&self) -> Value {
                Value::Float(self.0)
            }
        }
        assert_eq!(to_string(&F(1.0)).unwrap(), "1.0");
        assert_eq!(to_string(&F(f64::NAN)).unwrap(), "null");
        assert_eq!(to_string(&F(f64::INFINITY)).unwrap(), "null");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Vec::<f64>::new()).unwrap(), "[]");
    }
}
