#!/usr/bin/env bash
# Run the six criterion benches in quick mode and merge their results
# into one machine-readable baseline, BENCH_baseline.json.
# `scenario_grid` times the fpk-scenarios sweep runner at three grid
# sizes sharing one short-run base workload at 5 replications per cell
# (small/medium/large — a 6-cell table grid, a 24-cell table grid, a
# 1000-cell stress slice): `serial/<size>` is the legacy unpooled
# executor at width 1, `parallel/<size>` is the production persistent-
# pool streaming executor at machine width. The parallel row must beat
# serial at every size — that ratio is the regression this bench
# exists to catch; the group overrides the quick-mode sample cap
# because the margin is a few percent. `event_queue` pits the
# hand-rolled indexed event heap against a reference BinaryHeap.
#
# Quick mode (FPK_BENCH_QUICK=1, honoured by the vendored criterion —
# see DESIGN.md §Vendoring) cuts per-sample time and sample counts hard:
# the numbers are coarse but stable enough to flag order-of-magnitude
# regressions, and the whole sweep finishes in a few minutes. For careful
# timing run `cargo bench -p fpk-bench` without the env var.
#
# Usage: ./scripts/bench_baseline.sh [output.json]

set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_baseline.json}"
lines="$(mktemp)"
trap 'rm -f "$lines"' EXIT

for bench in numerics fp_solver fluid_and_dde simulator event_queue scenario_grid; do
    echo "== bench: $bench =="
    FPK_BENCH_QUICK=1 FPK_BENCH_JSON="$lines" \
        cargo bench -q -p fpk-bench --bench "$bench"
done

# Merge the JSON Lines into a single JSON document:
# {"generated_by": ..., "results": [ {...}, ... ]}
{
    printf '{\n  "generated_by": "scripts/bench_baseline.sh (FPK_BENCH_QUICK=1)",\n'
    printf '  "rustc": "%s",\n' "$(rustc --version)"
    printf '  "results": [\n'
    sed 's/^/    /; $!s/$/,/' "$lines"
    printf '  ]\n}\n'
} > "$out"

count="$(wc -l < "$lines")"
echo "wrote $out ($count benchmarks)"
