//! `FPK_CHECK=1` strict invariant mode (DESIGN §3h) is
//! observation-only: the same configs must produce bit-identical
//! results with the invariant layer on and off.
//!
//! One `#[test]` on purpose: the test binary toggles the process
//! environment, so splitting it into several tests would race the env
//! var across the default multi-threaded test runner.

use fpk_repro::congestion::decbit::DecbitPolicy;
use fpk_repro::congestion::{LinearExp, WindowAimd};
use fpk_repro::sim::{
    run_network, run_network_workload, ArrivalProcess, Bytes, FaultConfig, FlowSizeDist, FlowSpec,
    Link, NetConfig, PacketBytes, QdiscKind, Route, RtoPolicy, Service, SourceSpec, Topology,
    TraceMode, Workload,
};

fn base_net(t_end: f64, seed: u64) -> NetConfig {
    NetConfig {
        topology: Topology {
            links: vec![
                Link {
                    mu: 40.0,
                    service: Service::Exponential,
                    buffer: Some(25),
                },
                Link {
                    mu: 50.0,
                    service: Service::Deterministic,
                    buffer: None,
                },
            ],
        },
        faults: vec![
            FaultConfig::Iid { loss_prob: 0.02 },
            FaultConfig::Iid { loss_prob: 0.0 },
        ],
        t_end,
        warmup: 1.0,
        sample_interval: 0.1,
        seed,
        trace: TraceMode::Summary,
        qdisc: QdiscKind::RedMark {
            min_th: 2.5,
            max_th: 10.0,
            max_p: 1.0,
            weight: 0.25,
        },
        packet_bytes: Some(PacketBytes {
            dist: FlowSizeDist::BoundedPareto {
                min: 200.0,
                max: 1500.0,
                alpha: 1.3,
            },
            ref_bytes: Bytes(500.0),
        }),
    }
}

fn mixed_flows() -> Vec<FlowSpec> {
    [
        SourceSpec::Rate {
            law: LinearExp::new(4.0, 0.5, 12.0),
            lambda0: 5.0,
            update_interval: 0.1,
            prop_delay: 0.01,
            poisson: true,
        },
        SourceSpec::Window {
            aimd: WindowAimd::new(1.0, 0.5, 0.05, 10.0),
            w0: 2.0,
        },
        SourceSpec::OnOff {
            peak_rate: 20.0,
            mean_on: 0.3,
            mean_off: 0.7,
            prop_delay: 0.01,
        },
        SourceSpec::Decbit {
            policy: DecbitPolicy::raja88(),
            rtt: 0.05,
            w0: 2.0,
            q_hat: 1.0,
        },
    ]
    .into_iter()
    .map(|source| FlowSpec {
        source,
        route: Route { first: 0, last: 1 },
    })
    .collect()
}

fn workload() -> Workload {
    Workload::new(
        ArrivalProcess::Pareto {
            rate: 6.0,
            alpha: 1.5,
        },
        FlowSizeDist::Exponential { mean: 4.0 },
        vec![Route::single(0), Route { first: 0, last: 1 }],
    )
    .with_prop_delay(0.005)
}

/// A config exercising every dynamic fault machine at once: GE bursts
/// at the lossy hop, link flapping at the second (packets park in the
/// down hop's FIFO, exercising the `parked` conservation term), with
/// the workload retransmitting under a tight RTO so both `retransmits`
/// and `packets_gave_up` are nonzero.
fn chaos_net(seed: u64) -> NetConfig {
    let mut cfg = base_net(12.0, seed);
    cfg.faults = vec![
        FaultConfig::GilbertElliott {
            p_gb: 1.0,
            p_bg: 1.5,
            loss_good: 0.01,
            loss_bad: 0.4,
        },
        FaultConfig::LinkFlap {
            up_rate: 2.0,
            down_rate: 0.5,
        },
    ];
    cfg
}

fn degrade_net(seed: u64) -> NetConfig {
    let mut cfg = base_net(12.0, seed);
    cfg.faults = vec![
        FaultConfig::Degrade {
            factor: 0.4,
            period: 1.5,
        },
        FaultConfig::Iid { loss_prob: 0.05 },
    ];
    cfg
}

fn rto_workload() -> Workload {
    workload().with_rto(RtoPolicy {
        rto_base: 0.02,
        backoff: 2.0,
        max_retries: 2,
    })
}

/// Serialize every observable output so the on/off comparison is a
/// single string equality with a readable diff on failure.
fn run_both(strict: bool) -> Vec<String> {
    assert_eq!(
        std::env::var("FPK_CHECK").is_ok(),
        strict,
        "env toggle out of sync"
    );
    let static_run = run_network(&base_net(12.0, 424_242), &mixed_flows()).expect("static run");
    let wl_run = run_network_workload(&base_net(12.0, 77), &mixed_flows(), &workload())
        .expect("workload run");
    let chaos_static = run_network(&chaos_net(11), &mixed_flows()).expect("chaos static run");
    let chaos_wl = run_network_workload(&chaos_net(13), &mixed_flows(), &rto_workload())
        .expect("chaos workload run");
    let degrade_wl = run_network_workload(&degrade_net(17), &mixed_flows(), &rto_workload())
        .expect("degrade workload run");
    if strict {
        // The chaos configs must actually exercise the new machinery,
        // otherwise the bit-identity pin proves nothing.
        let wl = chaos_wl.workload.as_ref().expect("workload stats");
        assert!(wl.retransmits > 0, "chaos config never retransmitted");
        assert!(wl.packets_gave_up > 0, "chaos config never abandoned");
        assert_eq!(wl.packets_dropped, 0, "RTO losses must be gave_up");
        assert!(
            chaos_wl.downtime_frac[1] > 0.0,
            "flap hop recorded no downtime"
        );
    }
    vec![
        format!("{static_run:?}"),
        format!("{wl_run:?}"),
        format!("{chaos_static:?}"),
        format!("{chaos_wl:?}"),
        format!("{degrade_wl:?}"),
    ]
}

#[test]
fn strict_mode_is_observation_only() {
    // The harness may inherit FPK_CHECK from CI's strict job; normalize.
    std::env::remove_var("FPK_CHECK");
    let plain = run_both(false);

    std::env::set_var("FPK_CHECK", "1");
    let strict = run_both(true);
    std::env::remove_var("FPK_CHECK");

    let names = [
        "static-flow",
        "workload",
        "chaos static-flow",
        "chaos workload+RTO",
        "degrade workload+RTO",
    ];
    for ((p, s), name) in plain.iter().zip(&strict).zip(names) {
        assert_eq!(p, s, "strict mode changed a {name} run");
    }
}
