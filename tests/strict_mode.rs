//! `FPK_CHECK=1` strict invariant mode (DESIGN §3h) is
//! observation-only: the same configs must produce bit-identical
//! results with the invariant layer on and off.
//!
//! One `#[test]` on purpose: the test binary toggles the process
//! environment, so splitting it into several tests would race the env
//! var across the default multi-threaded test runner.

use fpk_repro::congestion::decbit::DecbitPolicy;
use fpk_repro::congestion::{LinearExp, WindowAimd};
use fpk_repro::sim::{
    run_network, run_network_workload, ArrivalProcess, Bytes, FaultConfig, FlowSizeDist, FlowSpec,
    Link, NetConfig, PacketBytes, QdiscKind, Route, Service, SourceSpec, Topology, TraceMode,
    Workload,
};

fn base_net(t_end: f64, seed: u64) -> NetConfig {
    NetConfig {
        topology: Topology {
            links: vec![
                Link {
                    mu: 40.0,
                    service: Service::Exponential,
                    buffer: Some(25),
                },
                Link {
                    mu: 50.0,
                    service: Service::Deterministic,
                    buffer: None,
                },
            ],
        },
        faults: vec![
            FaultConfig { loss_prob: 0.02 },
            FaultConfig { loss_prob: 0.0 },
        ],
        t_end,
        warmup: 1.0,
        sample_interval: 0.1,
        seed,
        trace: TraceMode::Summary,
        qdisc: QdiscKind::RedMark {
            min_th: 2.5,
            max_th: 10.0,
            max_p: 1.0,
            weight: 0.25,
        },
        packet_bytes: Some(PacketBytes {
            dist: FlowSizeDist::BoundedPareto {
                min: 200.0,
                max: 1500.0,
                alpha: 1.3,
            },
            ref_bytes: Bytes(500.0),
        }),
    }
}

fn mixed_flows() -> Vec<FlowSpec> {
    [
        SourceSpec::Rate {
            law: LinearExp::new(4.0, 0.5, 12.0),
            lambda0: 5.0,
            update_interval: 0.1,
            prop_delay: 0.01,
            poisson: true,
        },
        SourceSpec::Window {
            aimd: WindowAimd::new(1.0, 0.5, 0.05, 10.0),
            w0: 2.0,
        },
        SourceSpec::OnOff {
            peak_rate: 20.0,
            mean_on: 0.3,
            mean_off: 0.7,
            prop_delay: 0.01,
        },
        SourceSpec::Decbit {
            policy: DecbitPolicy::raja88(),
            rtt: 0.05,
            w0: 2.0,
            q_hat: 1.0,
        },
    ]
    .into_iter()
    .map(|source| FlowSpec {
        source,
        route: Route { first: 0, last: 1 },
    })
    .collect()
}

fn workload() -> Workload {
    Workload::new(
        ArrivalProcess::Pareto {
            rate: 6.0,
            alpha: 1.5,
        },
        FlowSizeDist::Exponential { mean: 4.0 },
        vec![Route::single(0), Route { first: 0, last: 1 }],
    )
    .with_prop_delay(0.005)
}

/// Serialize every observable output so the on/off comparison is a
/// single string equality with a readable diff on failure.
fn run_both(strict: bool) -> (String, String) {
    assert_eq!(
        std::env::var("FPK_CHECK").is_ok(),
        strict,
        "env toggle out of sync"
    );
    let static_run = run_network(&base_net(12.0, 424_242), &mixed_flows()).expect("static run");
    let wl_run = run_network_workload(&base_net(12.0, 77), &mixed_flows(), &workload())
        .expect("workload run");
    (format!("{static_run:?}"), format!("{wl_run:?}"))
}

#[test]
fn strict_mode_is_observation_only() {
    // The harness may inherit FPK_CHECK from CI's strict job; normalize.
    std::env::remove_var("FPK_CHECK");
    let (plain_static, plain_wl) = run_both(false);

    std::env::set_var("FPK_CHECK", "1");
    let (strict_static, strict_wl) = run_both(true);
    std::env::remove_var("FPK_CHECK");

    assert_eq!(
        plain_static, strict_static,
        "strict mode changed a static-flow run"
    );
    assert_eq!(plain_wl, strict_wl, "strict mode changed a workload run");
}
