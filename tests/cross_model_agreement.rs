//! Cross-crate integration: the four views of the controlled queue —
//! analytic theory, fluid ODEs, Fokker–Planck PDE, Langevin Monte Carlo
//! and the packet simulator — must tell one consistent story.

use fpk_repro::congestion::theory::{sliding_share, ReturnMap};
use fpk_repro::congestion::LinearExp;
use fpk_repro::fluid::multi::{simulate_multi, MultiParams};
use fpk_repro::fluid::phase::section_crossings;
use fpk_repro::fluid::single::{simulate, FluidParams};
use fpk_repro::fpk::montecarlo::{simulate_ensemble, McConfig};
use fpk_repro::fpk::solver::{FpProblem, FpSolver};
use fpk_repro::fpk::Density;
use fpk_repro::numerics::stats::ks_sample_vs_density;
use fpk_repro::sim::{run, Service, SimConfig, SourceSpec};

fn law() -> LinearExp {
    LinearExp::new(1.0, 0.5, 10.0)
}

#[test]
fn analytic_return_map_matches_integrated_fluid() {
    let mu = 5.0;
    let map = ReturnMap::new(law(), mu).unwrap();
    let analytic = map.iterate(1.5, 5).unwrap();
    let traj = simulate(
        &law(),
        &FluidParams {
            mu,
            q0: 10.0,
            lambda0: 1.5,
            t_end: 80.0,
            dt: 2e-4,
        },
    )
    .unwrap();
    let mut numeric = vec![1.5];
    numeric.extend(
        section_crossings(&traj, 10.0)
            .into_iter()
            .filter(|c| !c.upward)
            .map(|c| c.lambda),
    );
    for (k, (a, n)) in analytic.iter().zip(numeric.iter()).enumerate() {
        assert!(
            (a - n).abs() < 5e-3,
            "revolution {k}: analytic {a} vs numeric {n}"
        );
    }
}

#[test]
fn fp_mean_tracks_fluid_before_switching() {
    // While the density bulk stays on one side of q̂ the PDE mean follows
    // the deterministic characteristic.
    let mu = 5.0;
    let t_end = 2.0;
    let grid = Density::standard_grid(30.0, -5.0, 6.0, 120, 88).unwrap();
    let init = Density::gaussian(grid, 6.0, -2.0, 0.6, 0.3).unwrap();
    let mut solver = FpSolver::new(FpProblem::new(law(), mu, 1e-3), init).unwrap();
    solver.run_until(t_end).unwrap();

    let fluid = simulate(
        &law(),
        &FluidParams {
            mu,
            q0: 6.0,
            lambda0: 3.0, // ν = −2
            t_end,
            dt: 1e-4,
        },
    )
    .unwrap();
    let (qf, lf) = fluid.final_state();
    assert!(
        (solver.density().mean_q() - qf).abs() < 0.4,
        "FP mean q {} vs fluid {qf}",
        solver.density().mean_q()
    );
    assert!(
        (solver.density().mean_nu() - (lf - mu)).abs() < 0.3,
        "FP mean nu {} vs fluid {}",
        solver.density().mean_nu(),
        lf - mu
    );
}

#[test]
#[ignore = "slow tier (~6 s unoptimised): 40k-particle ensemble vs 160×96 PDE; run via `cargo test -- --ignored`"]
fn fp_marginal_matches_monte_carlo_transient() {
    let mu = 5.0;
    let sigma2 = 0.4;
    let grid = Density::standard_grid(40.0, -6.0, 6.0, 160, 96).unwrap();
    let init = Density::gaussian(grid, 3.0, -3.0, 1.2, 0.6).unwrap();
    let mut solver = FpSolver::new(FpProblem::new(law(), mu, sigma2), init).unwrap();
    solver.run_until(3.0).unwrap();
    let mc = simulate_ensemble(
        &law(),
        &McConfig {
            mu,
            sigma2,
            n_particles: 40_000,
            dt: 2e-3,
            seed: 9,
            threads: 4,
            init_mean: (3.0, -3.0),
            init_std: (1.2, 0.6),
        },
        &[3.0],
    )
    .unwrap();
    let d = solver.density();
    let ks = ks_sample_vs_density(&mc[0].q, &d.grid.x.centers(), &d.marginal_q()).unwrap();
    // At t = 3 the bulk is parked against the q = 0 wall; agreement there
    // is limited by the PDE's numerical ν-diffusion at this (test-sized)
    // grid — tbl7_ablation_grid shows the moments still converging under
    // refinement. KS ≈ 0.11 at 160×96; assert a safety band above that.
    assert!(ks < 0.15, "transient KS distance {ks}");
    assert!((d.mean_q() - mc[0].mean_q()).abs() < 0.5);
}

#[test]
fn sliding_share_theory_verified_by_fluid_and_packets() {
    let laws = [
        LinearExp::new(1.0, 0.5, 10.0),
        LinearExp::new(3.0, 0.5, 10.0),
    ];
    let mu = 10.0;
    let predicted = sliding_share(&laws, mu).unwrap();

    // Fluid.
    let traj = simulate_multi(
        &laws,
        &MultiParams {
            mu,
            q0: 0.0,
            lambda0: vec![1.0, 1.0],
            t_end: 500.0,
            dt: 2e-3,
        },
    )
    .unwrap();
    let fluid = traj.mean_rates_tail(0.25);
    for (f, p) in fluid.iter().zip(predicted.iter()) {
        assert!(
            (f - p).abs() / p < 0.05,
            "fluid {fluid:?} vs theory {predicted:?}"
        );
    }

    // Packets (scaled to packet units).
    let pkt_laws = [
        LinearExp::new(4.0, 0.5, 12.0),
        LinearExp::new(12.0, 0.5, 12.0),
    ];
    let sources: Vec<SourceSpec> = pkt_laws
        .iter()
        .map(|l| SourceSpec::Rate {
            law: *l,
            lambda0: 5.0,
            update_interval: 0.1,
            prop_delay: 0.01,
            poisson: true,
        })
        .collect();
    let out = run(
        &SimConfig {
            mu: 100.0,
            service: Service::Exponential,
            buffer: None,
            t_end: 300.0,
            warmup: 80.0,
            sample_interval: 0.1,
            seed: 5,
        },
        &sources,
    )
    .unwrap();
    let ratio = out.flows[1].throughput / out.flows[0].throughput;
    assert!(
        (ratio - 3.0).abs() < 0.5,
        "packet share ratio {ratio} should be ≈ 3 (C0 ratio)"
    );
}

#[test]
fn packet_queue_hovers_near_fluid_equilibrium() {
    // The DES mean queue should sit in the neighbourhood of the fluid
    // limit point q̂ when a single matched JRJ source runs long enough.
    let out = run(
        &SimConfig {
            mu: 100.0,
            service: Service::Deterministic,
            buffer: None,
            t_end: 300.0,
            warmup: 100.0,
            sample_interval: 0.1,
            seed: 13,
        },
        &[SourceSpec::Rate {
            law: LinearExp::new(16.0, 0.5, 10.0),
            lambda0: 50.0,
            update_interval: 0.05,
            prop_delay: 0.005,
            poisson: true,
        }],
    )
    .unwrap();
    assert!(
        out.mean_queue > 3.0 && out.mean_queue < 20.0,
        "mean queue {} should bracket q̂ = 10",
        out.mean_queue
    );
    assert!(out.utilization > 0.85, "utilization {}", out.utilization);
}

#[test]
fn window_map_sawtooth_matches_packet_simulator() {
    // The closed-form Eq. 1 sawtooth should predict the DES window
    // dynamics of a single AIMD flow: compare mean window and peak.
    use fpk_repro::congestion::window_map::sawtooth;
    use fpk_repro::congestion::WindowAimd;

    let aimd = WindowAimd::new(1.0, 0.5, 0.05, 10.0);
    // Effective knee for the DES: pipe (μ·RTT) + marking threshold.
    let mu_pkts = 200.0;
    let knee = mu_pkts * aimd.rtt + aimd.q_hat;
    let st = sawtooth(&aimd, knee).unwrap();

    let out = run(
        &SimConfig {
            mu: mu_pkts,
            service: Service::Deterministic,
            buffer: None,
            t_end: 200.0,
            warmup: 50.0,
            sample_interval: 0.05,
            seed: 6,
        },
        &[SourceSpec::Window { aimd, w0: 2.0 }],
    )
    .unwrap();
    let tail: Vec<f64> = out.trace_ctl[out.trace_ctl.len() / 2..]
        .iter()
        .map(|c| c[0])
        .collect();
    let mean_w = tail.iter().sum::<f64>() / tail.len() as f64;
    let peak_w = tail.iter().cloned().fold(f64::MIN, f64::max);
    // Map-level prediction vs packet measurement: same scale (within
    // ~35% — the DES adds queueing delay to the RTT, stretching cycles).
    assert!(
        (mean_w - st.mean_window).abs() / st.mean_window < 0.35,
        "mean window: DES {mean_w} vs map {}",
        st.mean_window
    );
    assert!(
        (peak_w - st.w_peak).abs() / st.w_peak < 0.45,
        "peak window: DES {peak_w} vs map {}",
        st.w_peak
    );
}

#[test]
fn event_tracer_validates_fixed_step_integrator() {
    use fpk_repro::fluid::events::trace_events;
    let law = law();
    let trace = trace_events(&law, 5.0, 2.0, 1.0, 30.0).unwrap();
    let rk4 = simulate(
        &law,
        &FluidParams {
            mu: 5.0,
            q0: 2.0,
            lambda0: 1.0,
            t_end: 30.0,
            dt: 1e-4,
        },
    )
    .unwrap();
    let (qf, lf) = rk4.final_state();
    assert!((trace.final_state.0 - qf).abs() < 1e-2);
    assert!((trace.final_state.1 - lf).abs() < 1e-2);
}
