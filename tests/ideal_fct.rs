//! Analytic pins for the finite-flow workload layer.
//!
//! The workload layer (DESIGN §3f) injects open-loop finite flows into
//! the same event loop the adaptive sources run on; these tests pin its
//! numbers to closed-form queueing theory rather than to goldens:
//!
//! * an isolated flow on an idle deterministic bottleneck completes in
//!   exactly `prop_delay + size/μ` (and the multi-hop pipeline formula
//!   `hops·d + Σ_h 1/μ_h + (size−1)/μ_min`), to 1e-9;
//! * single-packet flows with Poisson arrivals on a deterministic
//!   server are an M/D/1 queue: the ensemble mean FCT must sit within
//!   its own 95% CI of the Pollaczek–Khinchine prediction
//!   `d + 1/μ + ρ/(2μ(1−ρ))` at ρ ≤ 0.5;
//! * conservation holds ungated by warm-up (every arrived flow
//!   completes or is still active; no packet is double-counted) and no
//!   flow ever beats its ideal FCT (slowdown ≥ 1), even under finite
//!   buffers and random loss;
//! * a ~1.5×10⁵-flow workload sweep is bit-identical across executor
//!   widths and the pooled/unpooled paths (the `montecarlo.rs`
//!   determinism policy extends to workload runs);
//! * slot recycling changes *only* the arena high-water mark: a 10⁵
//!   short-flow run needs O(concurrently-active) flow state, and every
//!   other output bit matches the no-recycling reference.

use fpk_repro::scenarios::{run_sweep_on, run_sweep_unpooled, Axis, Ensemble, Scenario, Sweep};
use fpk_repro::sim::{
    ideal_fct, ideal_fct_sized, run_network_workload, ArrivalProcess, Bytes, FaultConfig,
    FlowSizeDist, Link, NetConfig, PacketBytes, QdiscKind, Route, Service, SimConfig, Topology,
    TraceMode, Workload,
};

/// A workload-only `NetConfig` (no static flows, no faults).
fn net(topology: Topology, t_end: f64, warmup: f64, seed: u64) -> NetConfig {
    NetConfig {
        topology,
        faults: Vec::new(),
        t_end,
        warmup,
        sample_interval: 0.1,
        seed,
        trace: TraceMode::Off,
        qdisc: QdiscKind::Fifo,
        packet_bytes: None,
    }
}

/// One flow on an idle deterministic bottleneck: FCT is exactly
/// `d + size/μ` — the paced burst must not add queueing of its own.
#[test]
fn idle_single_hop_fct_is_exact() {
    let (mu, size, d) = (50.0, 8u64, 0.02);
    let w = Workload::new(
        ArrivalProcess::Poisson { rate: 5.0 },
        FlowSizeDist::Deterministic { packets: size },
        vec![Route::single(0)],
    )
    .with_prop_delay(d)
    .with_max_flows(1);
    let mut cfg = net(
        Topology::single(mu, Service::Deterministic, None),
        20.0,
        0.0,
        7,
    );
    // Full trace on a zero-static-flow run: control rows must come back
    // empty (one per sample) rather than panicking.
    cfg.trace = TraceMode::Full;
    let out = run_network_workload(&cfg, &[], &w).unwrap();
    assert_eq!(out.trace_ctl.len(), out.trace_t.len());
    assert!(out.trace_ctl.iter().all(Vec::is_empty));
    let stats = out.workload.expect("workload stats");
    assert_eq!(stats.arrived, 1);
    assert_eq!(stats.completed_clean, 1);
    assert_eq!(stats.fct.count, 1);
    let ideal = d + size as f64 / mu;
    assert!(
        (stats.fct.mean - ideal).abs() <= 1e-9,
        "idle FCT {} != d + S/mu = {ideal}",
        stats.fct.mean
    );
    assert!((stats.slowdown.mean - 1.0).abs() <= 1e-9);
}

/// One flow across a 3-hop heterogeneous deterministic tandem: FCT is
/// the store-and-forward pipeline time `hops·d + Σ_h 1/μ_h +
/// (size−1)/μ_min`, hand-computed *and* as [`ideal_fct`] reports it.
#[test]
fn idle_multi_hop_fct_matches_pipeline_formula() {
    let (mus, size, d) = ([10.0, 5.0, 20.0], 6u64, 0.01);
    let links: Vec<Link> = mus
        .iter()
        .map(|&mu| Link {
            mu,
            service: Service::Deterministic,
            buffer: None,
        })
        .collect();
    let topology = Topology { links };
    let route = Route::full(3);
    let w = Workload::new(
        ArrivalProcess::Poisson { rate: 5.0 },
        FlowSizeDist::Deterministic { packets: size },
        vec![route],
    )
    .with_prop_delay(d)
    .with_max_flows(1);
    let cfg = net(topology.clone(), 30.0, 0.0, 11);
    let out = run_network_workload(&cfg, &[], &w).unwrap();
    let stats = out.workload.expect("workload stats");
    assert_eq!(stats.fct.count, 1);
    let by_hand = 3.0 * d + mus.iter().map(|&mu| 1.0 / mu).sum::<f64>() + (size - 1) as f64 / 5.0;
    assert!(
        (stats.fct.mean - by_hand).abs() <= 1e-9,
        "pipeline FCT {} != {by_hand}",
        stats.fct.mean
    );
    let helper = ideal_fct(&topology, route, size, d);
    assert!(
        (helper - by_hand).abs() <= 1e-12,
        "ideal_fct drifted off the formula"
    );
}

/// Byte-granular packets on the same idle heterogeneous tandem: a
/// constant per-packet size of 3 bytes against a 2-byte reference makes
/// every packet cost exactly 1.5 nominal service times, so the FCT is
/// the pipeline formula with every service term scaled by 1.5 — which
/// is precisely what [`ideal_fct_sized`] reports. Because the factor is
/// deterministic, the ideal is exact too and the slowdown stays 1.
#[test]
fn idle_multi_hop_fct_with_byte_sizes_is_exact() {
    let (mus, size, d) = ([10.0, 5.0, 20.0], 6u64, 0.01);
    let f = 1.5; // 3 bytes / 2-byte reference
    let links: Vec<Link> = mus
        .iter()
        .map(|&mu| Link {
            mu,
            service: Service::Deterministic,
            buffer: None,
        })
        .collect();
    let topology = Topology { links };
    let route = Route::full(3);
    let w = Workload::new(
        ArrivalProcess::Poisson { rate: 5.0 },
        FlowSizeDist::Deterministic { packets: size },
        vec![route],
    )
    .with_prop_delay(d)
    .with_max_flows(1);
    let mut cfg = net(topology.clone(), 30.0, 0.0, 11);
    cfg.packet_bytes = Some(PacketBytes {
        dist: FlowSizeDist::Deterministic { packets: 3 },
        ref_bytes: Bytes(2.0),
    });
    let out = run_network_workload(&cfg, &[], &w).unwrap();
    let stats = out.workload.expect("workload stats");
    assert_eq!(stats.fct.count, 1);
    let by_hand = 3.0 * d + mus.iter().map(|&mu| f / mu).sum::<f64>() + f * (size - 1) as f64 / 5.0;
    assert!(
        (stats.fct.mean - by_hand).abs() <= 1e-9,
        "byte-sized pipeline FCT {} != {by_hand}",
        stats.fct.mean
    );
    let helper = ideal_fct_sized(&topology, route, size, d, f);
    assert!(
        (helper - by_hand).abs() <= 1e-12,
        "ideal_fct_sized drifted off the formula"
    );
    assert!(
        (stats.slowdown.mean - 1.0).abs() <= 1e-9,
        "deterministic byte factor must keep slowdown at 1, got {}",
        stats.slowdown.mean
    );
}

/// Single-packet flows + Poisson arrivals + deterministic server =
/// M/D/1. Over an 8-seed ensemble the mean FCT must sit within its own
/// 95% CI of Pollaczek–Khinchine, `d + 1/μ + ρ/(2μ(1−ρ))`, at both
/// tested loads (the diffusion-free regime, ρ ≤ 0.5).
#[test]
fn md1_mean_fct_within_ci_of_pollaczek_khinchine() {
    let (mu, d) = (20.0, 0.01);
    for rho in [0.3, 0.5] {
        let w = Workload::new(
            ArrivalProcess::Poisson { rate: rho * mu },
            FlowSizeDist::Deterministic { packets: 1 },
            vec![Route::single(0)],
        )
        .with_prop_delay(d);
        let cell_seed = 0x4d44_3151; // "MD1Q"
        let mut means = Vec::new();
        for r in 0..8 {
            let cfg = net(
                Topology::single(mu, Service::Deterministic, None),
                300.0,
                30.0,
                Ensemble::replication_seed(cell_seed, r),
            );
            let out = run_network_workload(&cfg, &[], &w).unwrap();
            let stats = out.workload.expect("workload stats");
            assert!(stats.fct.count > 1000, "too few FCT samples at rho={rho}");
            means.push(stats.fct.mean);
        }
        let stat = fpk_repro::scenarios::Stat::from_samples(&means);
        let predicted = d + 1.0 / mu + rho / (2.0 * mu * (1.0 - rho));
        assert!(
            (stat.mean - predicted).abs() <= stat.ci95,
            "rho={rho}: ensemble FCT {} ± {} vs P-K {predicted}",
            stat.mean,
            stat.ci95
        );
    }
}

/// Conservation and the slowdown floor under the adversarial setup:
/// finite buffers, random loss, heavy-tailed sizes, Zipf routes on a
/// 2-hop tandem. Every arrived flow is completed or still active;
/// terminal packet outcomes never exceed injections; and no clean flow
/// beats its ideal FCT. (Deterministic service: with stochastic service
/// the "ideal" is a mean, and a lucky draw can legitimately beat it —
/// the floor is only an invariant when service times are exact.)
#[test]
fn conservation_and_slowdown_floor_under_drops() {
    let topology = Topology::uniform(
        2,
        Link {
            mu: 40.0,
            service: Service::Deterministic,
            buffer: Some(5),
        },
    );
    let w = Workload::new(
        ArrivalProcess::Pareto {
            rate: 12.0,
            alpha: 1.8,
        },
        FlowSizeDist::BoundedPareto {
            min: 1.0,
            max: 40.0,
            alpha: 1.2,
        },
        vec![Route::full(2), Route::single(0), Route::single(1)],
    )
    .with_zipf(1.0)
    .with_prop_delay(0.005);
    let mut cfg = net(topology, 60.0, 10.0, 23);
    cfg.faults = vec![FaultConfig::Iid { loss_prob: 0.05 }; 2];
    let out = run_network_workload(&cfg, &[], &w).unwrap();
    let s = out.workload.expect("workload stats");
    assert!(
        s.arrived > 300,
        "want a substantial population, got {}",
        s.arrived
    );
    assert_eq!(
        s.arrived,
        s.completed + s.active_at_end,
        "every arrived flow must complete or be active at t_end"
    );
    assert!(s.completed_clean <= s.completed);
    assert!(
        s.fct.count <= s.completed_clean,
        "FCT samples are warm clean completions only"
    );
    assert!(
        s.packets_delivered + s.packets_dropped <= s.packets_sent,
        "terminal outcomes exceed injected packets"
    );
    assert!(
        s.packets_dropped > 0,
        "adversarial run should actually drop"
    );
    // Slowdown = FCT / ideal_fct per flow: physics says ≥ 1 always.
    assert!(
        s.slowdown.min >= 1.0 - 1e-9,
        "a flow beat its idle-network FCT: slowdown.min = {}",
        s.slowdown.min
    );
    assert!(s.fct.min <= s.fct.p50 && s.fct.p50 <= s.fct.p99 && s.fct.p99 <= s.fct.max);
}

/// Byte mode with a unity size factor is the unit-packet engine, bit
/// for bit: `Deterministic{5}` bytes against a 5-byte reference makes
/// every per-packet factor exactly `1.0f32`, the service product
/// `svc * 1.0` is bitwise exact, and the extra RNG draws the byte path
/// would normally add are absent for a deterministic distribution — so
/// the M/D/1 run must reproduce the unit-packet run exactly.
#[test]
fn md1_with_unity_byte_factor_is_bit_identical_to_unit_packets() {
    let (mu, d, rho) = (20.0, 0.01, 0.5);
    let w = Workload::new(
        ArrivalProcess::Poisson { rate: rho * mu },
        FlowSizeDist::Deterministic { packets: 1 },
        vec![Route::single(0)],
    )
    .with_prop_delay(d);
    let cfg = net(
        Topology::single(mu, Service::Deterministic, None),
        300.0,
        30.0,
        0x4d44_3151,
    );
    let mut cfg_bytes = cfg.clone();
    cfg_bytes.packet_bytes = Some(PacketBytes {
        dist: FlowSizeDist::Deterministic { packets: 5 },
        ref_bytes: Bytes(5.0),
    });
    let unit = run_network_workload(&cfg, &[], &w).unwrap();
    let bytes = run_network_workload(&cfg_bytes, &[], &w).unwrap();
    let us = unit.workload.expect("unit stats");
    let bs = bytes.workload.expect("byte stats");
    assert!(us.fct.count > 1000, "too few samples for a meaningful pin");
    assert_eq!(us, bs, "unity byte factor diverged from unit packets");
    assert_eq!(
        unit.mean_queue[0].to_bits(),
        bytes.mean_queue[0].to_bits(),
        "unity byte factor perturbed the queue trajectory"
    );
}

/// The sweep base used by the executor bit-identity pin: workload-only
/// cells whose ρ and burstiness axes rescale the arrival process.
fn workload_sweep() -> Sweep {
    let base = Scenario::new(
        "wl_determinism",
        SimConfig {
            mu: 5000.0,
            service: Service::Deterministic,
            buffer: Some(200),
            t_end: 25.0,
            warmup: 5.0,
            sample_interval: 0.1,
            seed: 0,
        },
        Vec::new(),
    )
    .with_workload(Workload::new(
        ArrivalProcess::Poisson { rate: 1.0 },
        FlowSizeDist::Deterministic { packets: 2 },
        vec![Route::single(0)],
    ));
    Sweep::new(base, 90210)
        .axis(Axis::load_rho(vec![0.2, 0.4]))
        .axis(Axis::arrival_burstiness(vec![1.0, 1.5]))
}

/// ~1.5×10⁵ flows across a 4-cell × 2-replication workload sweep must
/// serialize bit-identically from the pooled executor at widths 1 and
/// 3 and from the unpooled reference path (no `FPK_THREADS` /
/// `FPK_POOL` env involvement — the widths are passed explicitly).
#[test]
fn workload_sweep_bit_identical_across_executors() {
    let sweep = workload_sweep();
    let a = run_sweep_on(&sweep, 2, 1).unwrap();
    // The grid really is at the promised scale, and every cell carries
    // workload statistics.
    let total_arrived: f64 = a
        .cells
        .iter()
        .map(|c| {
            let wl = c.stats.workload.as_ref().expect("workload ensemble");
            wl.arrived.mean * c.stats.replications as f64
        })
        .sum();
    assert!(
        total_arrived >= 1e5,
        "sweep should drive ≥ 1e5 flows, got {total_arrived}"
    );
    let a = serde_json::to_string(&a).unwrap();
    let b = serde_json::to_string(&run_sweep_on(&sweep, 2, 3).unwrap()).unwrap();
    let c = serde_json::to_string(&run_sweep_unpooled(&sweep, 2, 3).unwrap()).unwrap();
    assert_eq!(a, b, "pooled width 1 vs 3 diverged");
    assert_eq!(a, c, "pooled vs unpooled diverged");
}

/// 10⁵ short flows through one bottleneck: with slot recycling the
/// arena holds O(concurrently-active) flow slots (high-water mark ==
/// peak_active); without it, one slot per arrival. Every other output —
/// counters, FCT bits, queue trace moments — is identical, because slot
/// numbering never feeds times or the RNG.
#[test]
fn recycling_pins_arena_to_active_flows() {
    let mk = |recycle: bool| {
        let mut w = Workload::new(
            ArrivalProcess::Poisson { rate: 2000.0 },
            FlowSizeDist::Deterministic { packets: 2 },
            vec![Route::single(0)],
        );
        if !recycle {
            w = w.without_recycling();
        }
        let cfg = net(
            Topology::single(5000.0, Service::Deterministic, None),
            50.0,
            5.0,
            42,
        );
        run_network_workload(&cfg, &[], &w).unwrap()
    };
    let rec = mk(true);
    let noref = mk(false);
    let rs = rec.workload.clone().expect("stats");
    let ns = noref.workload.clone().expect("stats");
    assert!(rs.arrived >= 99_000, "want ~1e5 flows, got {}", rs.arrived);
    assert_eq!(
        ns.slot_high_water, ns.arrived,
        "no recycling: slot per arrival"
    );
    assert_eq!(
        rs.slot_high_water, rs.peak_active,
        "recycling: slots == peak active"
    );
    assert!(
        rs.slot_high_water < rs.arrived / 100,
        "free list failed to bound state: {} slots for {} flows",
        rs.slot_high_water,
        rs.arrived
    );
    // Identical everything else: align the one legitimately different
    // field, then compare whole stats structs and the queue moments.
    let mut ns_aligned = ns;
    ns_aligned.slot_high_water = rs.slot_high_water;
    assert_eq!(rs, ns_aligned, "recycling changed an observable output");
    assert_eq!(
        rec.mean_queue[0].to_bits(),
        noref.mean_queue[0].to_bits(),
        "recycling perturbed the queue trajectory"
    );
}
