//! Equivalence pins for the topology-first engine refactor.
//!
//! The PR that introduced `fpk_sim::network` deleted the two dedicated
//! event loops (`engine`'s single-bottleneck loop and `tandem`'s private
//! `BinaryHeap` loop) and routed everything through one hop-indexed
//! engine. These tests pin that contract two ways:
//!
//! 1. **Golden constants** captured from the *pre-refactor* engines: the
//!    unified engine must reproduce them bit-for-bit (same seed → same
//!    counters, same trace sums, same f64 bit patterns).
//! 2. **Shim equality**: `run`/`run_with_faults` versus `run_network` on
//!    the equivalent 1-link topology, and `run_tandem` versus
//!    `run_network` on the equivalent lossless K-link topology, must
//!    agree exactly — guarding against the shims and the network API
//!    drifting apart in the future.

use fpk_repro::congestion::decbit::DecbitPolicy;
use fpk_repro::congestion::{LinearExp, WindowAimd};
use fpk_repro::sim::{
    run_network, run_network_workload, run_tandem, run_with_faults, ArrivalProcess, Bytes,
    FaultConfig, FlowSizeDist, FlowSpec, NetConfig, PacketBytes, QdiscKind, Route, Service,
    SimConfig, SourceSpec, TandemConfig, TandemFlow, Topology, TraceMode, Workload,
};

fn mixed_sources() -> Vec<SourceSpec> {
    vec![
        SourceSpec::Rate {
            law: LinearExp::new(4.0, 0.5, 12.0),
            lambda0: 5.0,
            update_interval: 0.1,
            prop_delay: 0.01,
            poisson: true,
        },
        SourceSpec::Window {
            aimd: WindowAimd::new(1.0, 0.5, 0.05, 10.0),
            w0: 2.0,
        },
        SourceSpec::OnOff {
            peak_rate: 20.0,
            mean_on: 0.3,
            mean_off: 0.7,
            prop_delay: 0.01,
        },
        SourceSpec::Decbit {
            policy: DecbitPolicy::raja88(),
            rtt: 0.05,
            w0: 2.0,
            q_hat: 1.0,
        },
    ]
}

/// Pre-refactor golden: mixed sources + finite buffer + 5% loss on one
/// exponential bottleneck, seed 2024 (captured from commit 20877db).
#[test]
fn single_link_goldens_mixed_sources_with_loss() {
    let cfg = SimConfig {
        mu: 50.0,
        service: Service::Exponential,
        buffer: Some(30),
        t_end: 40.0,
        warmup: 8.0,
        sample_interval: 0.1,
        seed: 2024,
    };
    let out = run_with_faults(
        &cfg,
        &mixed_sources(),
        &FaultConfig::Iid { loss_prob: 0.05 },
    )
    .unwrap();
    let books: Vec<(u64, u64, u64)> = out
        .flows
        .iter()
        .map(|f| (f.sent, f.delivered, f.dropped))
        .collect();
    assert_eq!(
        books,
        vec![
            (754, 710, 40),
            (515, 475, 39),
            (185, 175, 10),
            (163, 152, 11)
        ],
        "per-flow counters moved off the pre-refactor engine"
    );
    assert_eq!(out.trace_q.len(), 401);
    let qsum: f64 = out.trace_q.iter().sum();
    assert_eq!(qsum.to_bits(), 0x40ab_6a00_0000_0000, "trace_q sum");
    assert_eq!(
        out.mean_queue.to_bits(),
        0x4022_5f15_c7a0_39b0,
        "mean_queue"
    );
    assert_eq!(
        out.total_throughput.to_bits(),
        0x4047_a000_0000_0000,
        "total_throughput"
    );
    let ctl_last: Vec<u64> = out
        .trace_ctl
        .last()
        .unwrap()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(
        ctl_last,
        vec![
            0x4034_8602_4b4b_b77b,
            0x4012_0000_0000_0000,
            0x0000_0000_0000_0000,
            0x3ff0_0000_0000_0000,
        ],
        "final control-state sample"
    );
}

/// Pre-refactor golden: a lone AIMD window flow on a deterministic
/// server, no faults, seed 7.
#[test]
fn single_link_goldens_deterministic_window() {
    let cfg = SimConfig {
        mu: 80.0,
        service: Service::Deterministic,
        buffer: None,
        t_end: 30.0,
        warmup: 5.0,
        sample_interval: 0.1,
        seed: 7,
    };
    let src = SourceSpec::Window {
        aimd: WindowAimd::new(1.0, 0.5, 0.05, 12.0),
        w0: 2.0,
    };
    let out = run_with_faults(&cfg, &[src], &FaultConfig::default()).unwrap();
    let f = &out.flows[0];
    assert_eq!((f.sent, f.delivered, f.dropped), (1871, 1861, 0));
    assert_eq!(out.trace_q.len(), 301);
    let qsum: f64 = out.trace_q.iter().sum();
    assert_eq!(qsum.to_bits(), 0x40a0_b400_0000_0000);
    assert_eq!(out.mean_queue.to_bits(), 0x401d_06a7_ef9d_b2c6);
}

/// Pre-refactor golden: 3-queue heterogeneous tandem (exponential
/// service), one long flow + per-hop cross traffic, seed 99. The old
/// `tandem.rs` private event loop produced exactly these counters.
#[test]
fn tandem_goldens_exponential_parking_lot() {
    let aimd = WindowAimd::new(1.0, 0.5, 0.05, 10.0);
    let mk = |first: usize, last: usize| TandemFlow {
        aimd,
        w0: 2.0,
        first_hop: first,
        last_hop: last,
    };
    let out = run_tandem(
        &TandemConfig {
            mu: vec![100.0, 80.0, 120.0],
            exponential_service: true,
            t_end: 120.0,
            warmup: 24.0,
            seed: 99,
        },
        &[mk(0, 2), mk(0, 0), mk(1, 1), mk(2, 2)],
    )
    .unwrap();
    let delivered: Vec<u64> = out.flows.iter().map(|f| f.delivered).collect();
    assert_eq!(delivered, vec![823, 7738, 6256, 9317]);
    let mq_bits: Vec<u64> = out.mean_queue.iter().map(|q| q.to_bits()).collect();
    assert_eq!(
        mq_bits,
        vec![
            0x4015_663f_a8ed_061f,
            0x4017_4221_7736_1815,
            0x4014_118c_c0b5_68c8,
        ]
    );
}

/// Pre-refactor golden: deterministic-service tandem, seed 5.
#[test]
fn tandem_goldens_deterministic_service() {
    let aimd = WindowAimd::new(1.0, 0.5, 0.05, 10.0);
    let mk = |first: usize, last: usize| TandemFlow {
        aimd,
        w0: 2.0,
        first_hop: first,
        last_hop: last,
    };
    let out = run_tandem(
        &TandemConfig {
            mu: vec![60.0, 60.0],
            exponential_service: false,
            t_end: 90.0,
            warmup: 18.0,
            seed: 5,
        },
        &[mk(0, 1), mk(1, 1)],
    )
    .unwrap();
    let delivered: Vec<u64> = out.flows.iter().map(|f| f.delivered).collect();
    assert_eq!(delivered, vec![1301, 2774]);
    let mq_bits: Vec<u64> = out.mean_queue.iter().map(|q| q.to_bits()).collect();
    assert_eq!(mq_bits, vec![0x3fd7_2f68_4bda_1184, 0x401a_3777_7777_75eb]);
}

/// `run_with_faults` ≡ `run_network` on the equivalent 1-link topology:
/// same traces, same counters, field by field.
#[test]
fn shim_matches_run_network_single_link() {
    let cfg = SimConfig {
        mu: 60.0,
        service: Service::Exponential,
        buffer: Some(25),
        t_end: 25.0,
        warmup: 5.0,
        sample_interval: 0.1,
        seed: 31,
    };
    let faults = FaultConfig::Iid { loss_prob: 0.03 };
    let via_shim = run_with_faults(&cfg, &mixed_sources(), &faults).unwrap();

    let net = NetConfig {
        topology: Topology::single(cfg.mu, cfg.service, cfg.buffer),
        faults: vec![faults],
        t_end: cfg.t_end,
        warmup: cfg.warmup,
        sample_interval: cfg.sample_interval,
        seed: cfg.seed,
        trace: TraceMode::Full,
        qdisc: QdiscKind::Fifo,
        packet_bytes: None,
    };
    let flows: Vec<FlowSpec> = mixed_sources()
        .into_iter()
        .map(FlowSpec::single_hop)
        .collect();
    let via_net = run_network(&net, &flows).unwrap();

    assert_eq!(via_shim.trace_t, via_net.trace_t);
    assert_eq!(via_shim.trace_q, via_net.trace_q[0]);
    assert_eq!(via_shim.trace_ctl, via_net.trace_ctl);
    assert_eq!(
        via_shim.mean_queue.to_bits(),
        via_net.mean_queue[0].to_bits()
    );
    assert_eq!(
        via_shim.total_throughput.to_bits(),
        via_net.total_throughput.to_bits()
    );
    for (a, b) in via_shim.flows.iter().zip(&via_net.flows) {
        assert_eq!(a.sent, b.sent);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        assert_eq!(b.hops, 1);
    }
}

/// Static flows through the workload machinery: `run_network_workload`
/// with an admission cap of zero must be bit-identical to plain
/// `run_network` — the workload code path schedules nothing, draws no
/// RNG, and perturbs no trace, so pre-workload goldens keep holding
/// for every scenario that doesn't opt in. (The same mixed-source +
/// loss setup as the golden test above, so this shim pin transitively
/// covers the pre-refactor constants too.)
#[test]
fn workload_with_zero_cap_matches_run_network() {
    let net = NetConfig {
        topology: Topology::single(50.0, Service::Exponential, Some(30)),
        faults: vec![FaultConfig::Iid { loss_prob: 0.05 }],
        t_end: 40.0,
        warmup: 8.0,
        sample_interval: 0.1,
        seed: 2024,
        trace: TraceMode::Full,
        qdisc: QdiscKind::Fifo,
        packet_bytes: None,
    };
    let flows: Vec<FlowSpec> = mixed_sources()
        .into_iter()
        .map(FlowSpec::single_hop)
        .collect();
    let plain = run_network(&net, &flows).unwrap();

    let off = Workload::new(
        ArrivalProcess::Poisson { rate: 100.0 },
        FlowSizeDist::Exponential { mean: 10.0 },
        vec![Route::single(0)],
    )
    .with_max_flows(0);
    let shimmed = run_network_workload(&net, &flows, &off).unwrap();

    assert_eq!(plain.trace_t, shimmed.trace_t);
    assert_eq!(plain.trace_q, shimmed.trace_q);
    assert_eq!(plain.trace_ctl, shimmed.trace_ctl);
    assert_eq!(
        plain.mean_queue[0].to_bits(),
        shimmed.mean_queue[0].to_bits()
    );
    assert_eq!(
        plain.total_throughput.to_bits(),
        shimmed.total_throughput.to_bits()
    );
    for (a, b) in plain.flows.iter().zip(&shimmed.flows) {
        assert_eq!(a.sent, b.sent);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
    }
    assert!(plain.workload.is_none());
    let s = shimmed
        .workload
        .expect("workload stats present even when capped off");
    assert_eq!((s.arrived, s.packets_sent, s.slot_high_water), (0, 0, 0));
    assert_eq!(s.fct.count, 0);
}

/// The queue-discipline refactor's fast-path pin: byte mode with a
/// unity size factor (`Deterministic{N}` bytes over an N-byte
/// reference) and the explicit `Fifo` discipline must be bit-identical
/// to the historical unit-packet engine on the golden mixed-source
/// configuration. The factor `(N as f64 / N as f64) as f32` is exactly
/// `1.0f32`; `svc * 1.0` is a bitwise no-op; and a deterministic byte
/// distribution draws no RNG — so every time, every counter, and every
/// trace bit must match the pre-refactor goldens that the unit-packet
/// tests above keep pinning.
#[test]
fn byte_mode_with_unity_factor_matches_unit_fast_path() {
    let mk = |packet_bytes: Option<PacketBytes>| NetConfig {
        topology: Topology::single(50.0, Service::Exponential, Some(30)),
        faults: vec![FaultConfig::Iid { loss_prob: 0.05 }],
        t_end: 40.0,
        warmup: 8.0,
        sample_interval: 0.1,
        seed: 2024,
        trace: TraceMode::Full,
        qdisc: QdiscKind::Fifo,
        packet_bytes,
    };
    let flows: Vec<FlowSpec> = mixed_sources()
        .into_iter()
        .map(FlowSpec::single_hop)
        .collect();
    let unit = run_network(&mk(None), &flows).unwrap();
    let bytes = run_network(
        &mk(Some(PacketBytes {
            dist: FlowSizeDist::Deterministic { packets: 1500 },
            ref_bytes: Bytes(1500.0),
        })),
        &flows,
    )
    .unwrap();

    assert_eq!(unit.trace_t, bytes.trace_t);
    assert_eq!(unit.trace_q, bytes.trace_q);
    assert_eq!(unit.trace_ctl, bytes.trace_ctl);
    assert_eq!(unit.mean_queue[0].to_bits(), bytes.mean_queue[0].to_bits());
    assert_eq!(
        unit.total_throughput.to_bits(),
        bytes.total_throughput.to_bits()
    );
    let books: Vec<(u64, u64, u64)> = bytes
        .flows
        .iter()
        .map(|f| (f.sent, f.delivered, f.dropped))
        .collect();
    // The same constants `single_link_goldens_mixed_sources_with_loss`
    // pins — the byte path reproduces the pre-refactor engine, not just
    // today's unit path.
    assert_eq!(
        books,
        vec![
            (754, 710, 40),
            (515, 475, 39),
            (185, 175, 10),
            (163, 152, 11)
        ],
        "byte mode with unity factor moved off the golden counters"
    );
}

/// `run_tandem` ≡ `run_network` on the equivalent lossless K-link
/// topology with pure window flows.
#[test]
fn shim_matches_run_network_tandem_shape() {
    let aimd = WindowAimd::new(1.0, 0.5, 0.04, 8.0);
    let legacy = [
        TandemFlow {
            aimd,
            w0: 2.0,
            first_hop: 0,
            last_hop: 2,
        },
        TandemFlow {
            aimd,
            w0: 2.0,
            first_hop: 1,
            last_hop: 1,
        },
    ];
    let cfg = TandemConfig {
        mu: vec![90.0, 70.0, 110.0],
        exponential_service: true,
        t_end: 60.0,
        warmup: 12.0,
        seed: 13,
    };
    let via_shim = run_tandem(&cfg, &legacy).unwrap();

    let via_net = run_network(
        &cfg.to_net_config(),
        &legacy
            .iter()
            .map(|f| FlowSpec {
                source: SourceSpec::Window {
                    aimd: f.aimd,
                    w0: f.w0,
                },
                route: Route {
                    first: f.first_hop,
                    last: f.last_hop,
                },
            })
            .collect::<Vec<_>>(),
    )
    .unwrap();

    for (a, b) in via_shim.flows.iter().zip(&via_net.flows) {
        assert_eq!(a.sent, b.sent);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        assert_eq!(a.hops, b.hops);
    }
    let shim_bits: Vec<u64> = via_shim.mean_queue.iter().map(|q| q.to_bits()).collect();
    let net_bits: Vec<u64> = via_net.mean_queue.iter().map(|q| q.to_bits()).collect();
    assert_eq!(shim_bits, net_bits);
}
