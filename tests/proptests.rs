//! Property-based tests over the library's core invariants.
//!
//! These sweep randomised parameters through the analytic theory, the
//! Fokker–Planck kernels and the fluid integrators, checking the
//! invariants the paper's claims rest on:
//!
//! * Theorem 1: the return map contracts for *every* admissible
//!   parameter combination;
//! * sliding-mode shares always sum to μ, are positive, and are ordered
//!   like C0/C1;
//! * finite-volume advection conserves mass and preserves positivity for
//!   arbitrary velocity fields and profiles;
//! * the DDE integrator degenerates to the ODE integrator as τ → 0;
//! * the scenario layer's seed-derivation contract (DESIGN §3b):
//!   reordering axis *values* only moves seeds between the cells whose
//!   positions changed, and growing the replication count R never
//!   perturbs the first R−1 replication seeds;
//! * the DES engine's hot-path contracts (DESIGN §"engine hot path"):
//!   the hand-rolled indexed event queue pops any random stream in the
//!   exact `(t, seq)` order of a reference `BinaryHeap`, and
//!   `TraceMode::Off` runs produce bit-identical counters (and
//!   `run_seeded` bit-identical summaries) to `TraceMode::Full` runs;
//! * the workload samplers (DESIGN §3f): interarrival and flow-size
//!   draws average to their analytic means at any fixed seed, Zipf
//!   route weights normalise and order by popularity, and cumulative-
//!   weight sampling reproduces the weights exactly in the
//!   infinite-sample (uniform grid) limit;
//! * the typed units (DESIGN §3g): newtype arithmetic is closed and
//!   agrees with raw `f64` arithmetic bit for bit, ordering follows
//!   magnitude, and the bit/byte/rate/delay physics round-trips;
//! * the RED discipline (DESIGN §3g): the marking probability stays in
//!   `[0, max_p]` along *every* EWMA trajectory, is monotone in the
//!   average, and the EWMA itself never escapes the hull of its
//!   inputs.

use fpk_repro::congestion::theory::{sliding_share, ReturnMap};
use fpk_repro::congestion::{LinearExp, WindowAimd};
use fpk_repro::fluid::single::{simulate, FluidParams};
use fpk_repro::fpk::fv::{advect_sweep, diffuse_crank_nicolson, Limiter};
use fpk_repro::numerics::dde::DdeProblem;
use fpk_repro::scenarios::{Axis, Ensemble, Scenario, Sweep};
use fpk_repro::sim::event::{Event, EventKind, EventQueue};
use fpk_repro::sim::workload::sample_cumulative;
use fpk_repro::sim::{
    red_mark_probability, zipf_weights, ArrivalProcess, Bits, BitsPerSec, Bytes, Delay,
    FlowSizeDist, HopQdiscState, QDisc, QdiscParams, RedMark,
};
use fpk_repro::sim::{
    run_network, summarize_network, FaultConfig, FlowSpec, Link, NetConfig, QdiscKind, Route,
    RtoPolicy, Service, SimConfig, SourceSpec, Topology, TraceMode,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BinaryHeap;

/// A scenario whose contents never run — the seed-contract tests only
/// inspect the grid expansion, not simulation output.
fn grid_scenario() -> Scenario {
    Scenario::new(
        "seed_contract",
        SimConfig {
            mu: 50.0,
            service: Service::Exponential,
            buffer: None,
            t_end: 10.0,
            warmup: 2.0,
            sample_interval: 0.1,
            seed: 0,
        },
        Vec::new(),
    )
}

/// Map each cell's first-axis coordinate to its derived seed.
fn coord_seed_pairs(base_seed: u64, values: &[f64]) -> Vec<(f64, u64)> {
    Sweep::new(grid_scenario(), base_seed)
        .axis(Axis::label_only("v", values.to_vec()))
        .cells()
        .into_iter()
        .map(|c| (c.coords[0], c.seed))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn theorem1_contracts_for_all_parameters(
        c0 in 0.05f64..5.0,
        c1 in 0.05f64..5.0,
        q_hat in 0.5f64..50.0,
        mu in 0.5f64..20.0,
        frac in 0.01f64..0.99,
    ) {
        let law = LinearExp::new(c0, c1, q_hat);
        let map = ReturnMap::new(law, mu).unwrap();
        let lambda0 = frac * mu;
        let contraction = map.contraction(lambda0).unwrap();
        prop_assert!(contraction > 0.0 && contraction < 1.0,
            "contraction {contraction} for c0={c0} c1={c1} q̂={q_hat} mu={mu} λ0={lambda0}");
        // Iterating never overshoots past mu.
        let rates = map.iterate(lambda0, 5).unwrap();
        for r in rates {
            prop_assert!(r < mu && r >= lambda0 - 1e-12);
        }
    }

    #[test]
    fn sliding_shares_sum_to_mu_and_order_by_ratio(
        ratios in prop::collection::vec((0.05f64..5.0, 0.05f64..5.0), 1..8),
        mu in 0.5f64..50.0,
    ) {
        let laws: Vec<LinearExp> = ratios.iter()
            .map(|&(c0, c1)| LinearExp::new(c0, c1, 10.0))
            .collect();
        let shares = sliding_share(&laws, mu).unwrap();
        let total: f64 = shares.iter().sum();
        prop_assert!((total - mu).abs() < 1e-9 * mu.max(1.0));
        prop_assert!(shares.iter().all(|&s| s > 0.0));
        // Ordering matches C0/C1 ordering.
        for i in 0..laws.len() {
            for j in 0..laws.len() {
                let ri = laws[i].c0 / laws[i].c1;
                let rj = laws[j].c0 / laws[j].c1;
                if ri > rj {
                    prop_assert!(shares[i] >= shares[j] - 1e-12);
                }
            }
        }
    }

    #[test]
    fn advection_conserves_mass_and_positivity(
        profile in prop::collection::vec(0.0f64..10.0, 8..64),
        vel_seed in prop::collection::vec(-3.0f64..3.0, 9..65),
        courant in 0.05f64..0.95,
        lim in prop::sample::select(vec![
            Limiter::Upwind, Limiter::Minmod, Limiter::VanLeer, Limiter::Superbee
        ]),
    ) {
        let n = profile.len();
        let mut f = profile.clone();
        // Build an (n+1)-face velocity field from the seed vector.
        let vel: Vec<f64> = (0..=n).map(|k| vel_seed[k % vel_seed.len()]).collect();
        // Sharp CFL for arbitrary (possibly diverging) fields: bound the
        // per-cell outflow through both faces (see fv::advect_sweep docs).
        let max_outflow = (0..n)
            .map(|j| vel[j + 1].max(0.0) - vel[j].min(0.0))
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let dx = 1.0;
        let dt = courant * dx / max_outflow;
        let mut flux = vec![0.0; n + 1];
        let mass0: f64 = f.iter().sum();
        for _ in 0..20 {
            advect_sweep(&mut f, &vel, dx, dt, lim, &mut flux);
        }
        let mass1: f64 = f.iter().sum();
        prop_assert!((mass1 - mass0).abs() <= 1e-9 * mass0.max(1.0),
            "mass {mass0} -> {mass1}");
        prop_assert!(f.iter().all(|&v| v >= -1e-9), "negative density appeared");
    }

    #[test]
    fn crank_nicolson_conserves_mass_any_r(
        profile in prop::collection::vec(0.0f64..5.0, 8..48),
        d in 0.01f64..10.0,
        dt in 0.01f64..10.0,
    ) {
        let n = profile.len();
        let mut f = profile.clone();
        let mass0: f64 = f.iter().sum();
        let mut b = [vec![0.0; n], vec![0.0; n], vec![0.0; n], vec![0.0; n], vec![0.0; n]];
        let [b0, b1, b2, b3, b4] = &mut b;
        diffuse_crank_nicolson(&mut f, d, 1.0, dt, b0, b1, b2, b3, b4).unwrap();
        let mass1: f64 = f.iter().sum();
        prop_assert!((mass1 - mass0).abs() <= 1e-9 * mass0.max(1.0));
        prop_assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn swapping_axis_values_only_swaps_the_affected_seeds(
        base_seed_raw in 0usize..usize::MAX,
        n in 2usize..12,
        i in 0usize..12,
        j in 0usize..12,
    ) {
        // Axis values are distinct by construction so coordinates
        // identify cells; swap positions i and j and check that every
        // *unmoved* value keeps exactly the seed it had, while the
        // swapped pair exchange theirs (cell seeds are a pure function
        // of (base_seed, index), per DESIGN §3b).
        let base_seed = base_seed_raw as u64;
        let (i, j) = (i % n, j % n);
        let values: Vec<f64> = (0..n).map(|k| k as f64).collect();
        let mut swapped = values.clone();
        swapped.swap(i, j);
        let before = coord_seed_pairs(base_seed, &values);
        let after = coord_seed_pairs(base_seed, &swapped);
        let seed_of = |pairs: &[(f64, u64)], v: f64| {
            pairs.iter().find(|(c, _)| *c == v).map(|(_, s)| *s).unwrap()
        };
        for (k, &v) in values.iter().enumerate() {
            if k == i || k == j {
                continue;
            }
            prop_assert_eq!(
                seed_of(&before, v),
                seed_of(&after, v),
                "unmoved value {} must keep its seed", v
            );
        }
        if i != j {
            prop_assert_eq!(seed_of(&before, values[i]), seed_of(&after, values[j]));
            prop_assert_eq!(seed_of(&before, values[j]), seed_of(&after, values[i]));
        }
    }

    #[test]
    fn growing_replications_never_perturbs_earlier_seeds(
        cell_seed_raw in 0usize..usize::MAX,
        r_small in 1usize..20,
        extra in 1usize..20,
    ) {
        // DESIGN §3b: replication r of a cell is a pure function of
        // (cell_seed, r), so raising R only appends new seeds.
        let cell_seed = cell_seed_raw as u64;
        let r_big = r_small + extra;
        let small: Vec<u64> = (0..r_small)
            .map(|r| Ensemble::replication_seed(cell_seed, r))
            .collect();
        let big: Vec<u64> = (0..r_big)
            .map(|r| Ensemble::replication_seed(cell_seed, r))
            .collect();
        prop_assert_eq!(&small[..], &big[..r_small]);
        // And the appended seeds are genuinely new streams.
        let mut all = big.clone();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), r_big, "replication seeds must be distinct");
    }

    #[test]
    fn fluid_queue_never_negative(
        c0 in 0.1f64..3.0,
        c1 in 0.1f64..3.0,
        q_hat in 0.5f64..20.0,
        mu in 1.0f64..10.0,
        q0 in 0.0f64..30.0,
        lambda0 in 0.0f64..15.0,
    ) {
        let law = LinearExp::new(c0, c1, q_hat);
        let traj = simulate(&law, &FluidParams {
            mu, q0, lambda0, t_end: 30.0, dt: 1e-3,
        }).unwrap();
        prop_assert!(traj.q.iter().all(|&q| q >= 0.0));
        prop_assert!(traj.lambda.iter().all(|&l| l >= 0.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexed_event_queue_matches_reference_heap(
        ops in prop::collection::vec((0.0f64..100.0, 0usize..4), 1..400),
    ) {
        // Random interleavings of pushes, pops and merged-lane
        // schedules, with times quantised to quarter units so
        // equal-time ties are frequent: the 4-ary indexed heap plus its
        // side-lane merge must emit the exact `(t, seq)` sequence of a
        // reference `BinaryHeap<Event>` holding *all* events and using
        // the documented reference `Ord`.
        let mut fast = EventQueue::new();
        let mut reference: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        // The lane contract allows one pending event per lane; the
        // sample lane (lane 0) is modelled here exactly as the engine
        // uses it.
        let mut sample_pending = false;
        for &(t_raw, op) in &ops {
            let t = (t_raw * 4.0).round() * 0.25;
            match op {
                2 => {
                    let a = fast.pop();
                    if matches!(a, Some(Event { kind: EventKind::Sample, .. })) {
                        sample_pending = false;
                    }
                    prop_assert_eq!(a, reference.pop());
                }
                3 if !sample_pending => {
                    fast.schedule_sample(t);
                    reference.push(Event { t, seq, kind: EventKind::Sample });
                    seq += 1;
                    sample_pending = true;
                }
                _ => {
                    let kind = EventKind::Arrival { flow: op, hop: 0, marked: false, size: 1.0, attempt: 0 };
                    fast.push(t, kind);
                    reference.push(Event { t, seq, kind });
                    seq += 1;
                }
            }
        }
        loop {
            let a = fast.pop();
            let b = reference.pop();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}

proptest! {
    // Fewer cases: every case is a pair of full DES runs.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn trace_modes_agree_bitwise(
        seed_raw in 0usize..10_000,
        mu in 30.0f64..120.0,
        hops in 1usize..4,
        w0 in 1.0f64..4.0,
    ) {
        // DESIGN §"engine hot path": the trace mode only controls what
        // is recorded, never the dynamics. Off must reproduce Full's
        // counters bit for bit, and the arena summary fast path must
        // reproduce `summarize_network` of the Full run bit for bit.
        let seed = seed_raw as u64;
        let flows = vec![
            FlowSpec {
                source: SourceSpec::Window {
                    aimd: WindowAimd::new(1.0, 0.5, 0.05, 8.0),
                    w0,
                },
                route: Route::full(hops),
            },
            FlowSpec {
                source: SourceSpec::Rate {
                    law: LinearExp::new(6.0, 0.5, 8.0),
                    lambda0: 0.3 * mu,
                    update_interval: 0.1,
                    prop_delay: 0.01,
                    poisson: true,
                },
                route: Route::single(0),
            },
        ];
        let mk = |trace: TraceMode| NetConfig {
            topology: Topology::uniform(
                hops,
                Link {
                    mu,
                    service: Service::Exponential,
                    buffer: Some(30),
                },
            ),
            faults: Vec::new(),
            t_end: 6.0,
            warmup: 1.0,
            sample_interval: 0.1,
            seed,
            trace,
            qdisc: QdiscKind::Fifo,
            packet_bytes: None,
        };
        let full = run_network(&mk(TraceMode::Full), &flows).unwrap();
        let off = run_network(&mk(TraceMode::Off), &flows).unwrap();
        prop_assert!(off.trace_t.is_empty() && off.trace_q.is_empty() && off.trace_ctl.is_empty());
        prop_assert_eq!(full.trace_t.len(), 61);
        for (a, b) in full.flows.iter().zip(&off.flows) {
            prop_assert_eq!(a.sent, b.sent);
            prop_assert_eq!(a.delivered, b.delivered);
            prop_assert_eq!(a.dropped, b.dropped);
            prop_assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        }
        let mq = |r: &fpk_repro::sim::NetResult| -> Vec<u64> {
            r.mean_queue.iter().map(|q| q.to_bits()).collect()
        };
        prop_assert_eq!(mq(&full), mq(&off));
        prop_assert_eq!(full.total_throughput.to_bits(), off.total_throughput.to_bits());

        let reference = summarize_network(&full, 0.5).unwrap();
        let mut arena = fpk_repro::sim::NetArena::new();
        let fast =
            fpk_repro::sim::run_network_summary(&mut arena, &mk(TraceMode::Full), &flows, 0.5)
                .unwrap();
        prop_assert_eq!(&fast.throughputs, &reference.throughputs);
        prop_assert_eq!(fast.jain.to_bits(), reference.jain.to_bits());
        prop_assert_eq!(fast.mean_queue.to_bits(), reference.mean_queue.to_bits());
        prop_assert_eq!(fast.utilization.to_bits(), reference.utilization.to_bits());
        prop_assert_eq!(fast.total_dropped, reference.total_dropped);
        prop_assert_eq!(&fast.ctl_std, &reference.ctl_std);
        let osc = |s: &fpk_repro::sim::RunSummary| {
            s.queue_oscillation
                .as_ref()
                .map(|o| (o.amplitude.to_bits(), o.period.to_bits(), o.cycles))
        };
        prop_assert_eq!(osc(&fast), osc(&reference));
    }
}

proptest! {
    // Fewer cases: each DDE solve is comparatively expensive.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn dde_with_tiny_lag_matches_ode(
        rate in 0.2f64..2.0,
        y0 in 0.5f64..3.0,
    ) {
        // y' = -rate·y(t−τ) with τ → 0 approaches y' = -rate·y.
        let phi = move |_t: f64, out: &mut [f64]| out[0] = y0;
        let problem = DdeProblem {
            lags: &[1e-4],
            t0: 0.0,
            t1: 2.0,
            phi: &phi,
            dim: 1,
        };
        let mut rhs = |_t: f64, _y: &[f64], delayed: &[Vec<f64>], d: &mut [f64]| {
            d[0] = -rate * delayed[0][0];
        };
        let traj = problem.solve(&mut rhs, 2000).unwrap();
        let yf = traj.last().unwrap().1[0];
        let exact = y0 * (-rate * 2.0f64).exp();
        prop_assert!((yf - exact).abs() < 2e-3 * y0,
            "yf {yf} vs exact {exact} (rate {rate}, y0 {y0})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn poisson_interarrivals_average_to_one_over_rate(
        rate in 0.5f64..50.0,
        seed_raw in 0usize..10_000,
    ) {
        // DESIGN §3f: one f64 draw per gap, exponential with mean
        // 1/rate. 8k samples put the standard error near 1.1% of the
        // mean; 5% is a comfortable deterministic bound at any seed.
        let p = ArrivalProcess::Poisson { rate };
        let mut rng = StdRng::seed_from_u64(seed_raw as u64);
        let n = 8_000;
        let mean = (0..n).map(|_| p.sample_interarrival(&mut rng)).sum::<f64>() / f64::from(n);
        prop_assert!(
            (mean - 1.0 / rate).abs() < 0.05 / rate,
            "Poisson mean gap {mean} vs 1/rate {}", 1.0 / rate
        );
    }

    #[test]
    fn pareto_interarrivals_keep_the_rate(
        rate in 0.5f64..20.0,
        alpha in 2.2f64..4.0,
        seed_raw in 0usize..10_000,
    ) {
        // The Pareto process is parameterised so its *mean* gap stays
        // 1/rate while alpha sets the burstiness. Finite variance only
        // for alpha > 2, so the mean-convergence check stays there.
        let p = ArrivalProcess::Pareto { rate, alpha };
        let mut rng = StdRng::seed_from_u64(seed_raw as u64);
        let n = 30_000;
        let mean = (0..n).map(|_| p.sample_interarrival(&mut rng)).sum::<f64>() / f64::from(n);
        prop_assert!(
            (mean - 1.0 / rate).abs() < 0.10 / rate,
            "Pareto(alpha={alpha}) mean gap {mean} vs 1/rate {}", 1.0 / rate
        );
    }

    #[test]
    fn bounded_pareto_samples_average_to_the_analytic_mean(
        min in 1.0f64..5.0,
        ratio in 5.0f64..100.0,
        alpha in 1.1f64..2.5,
        seed_raw in 0usize..10_000,
    ) {
        // `FlowSizeDist::mean()` is the continuous bounded-Pareto mean;
        // `sample()` rounds to whole packets (≥ 1), which biases each
        // draw by at most half a packet. The tail is capped at
        // max/min ≤ 100 so 16k samples tame the variance.
        let dist = FlowSizeDist::BoundedPareto { min, max: min * ratio, alpha };
        let analytic = dist.mean();
        let mut rng = StdRng::seed_from_u64(seed_raw as u64);
        let n = 16_000u32;
        let mean = (0..n).map(|_| dist.sample(&mut rng) as f64).sum::<f64>() / f64::from(n);
        prop_assert!(
            (mean - analytic).abs() < 0.10 * analytic + 0.5,
            "bounded-Pareto sample mean {mean} vs analytic {analytic} \
             (min={min} ratio={ratio} alpha={alpha})"
        );
    }

    #[test]
    fn zipf_weights_normalise_and_order_by_popularity(
        n in 1usize..200,
        s in 0.0f64..3.0,
    ) {
        let w = zipf_weights(n, s);
        prop_assert_eq!(w.len(), n);
        let total: f64 = w.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
        prop_assert!(w.iter().all(|&x| x > 0.0));
        // Popularity is non-increasing in rank (strictly for s > 0).
        prop_assert!(w.windows(2).all(|p| p[0] >= p[1] - 1e-15));
        if s == 0.0 {
            prop_assert!(w.iter().all(|&x| (x - 1.0 / n as f64).abs() < 1e-12));
        }
    }

    #[test]
    fn cumulative_sampling_reproduces_the_weights(
        n in 1usize..40,
        s in 0.0f64..2.5,
    ) {
        // Sweep a fine uniform grid of u through the cumulative-weight
        // table: the index must be monotone in u, and each index's
        // hit fraction equals its weight to grid resolution — the
        // reorder-stability contract (DESIGN §3b applied to routes:
        // a route's draw depends only on its cumulative interval, so
        // identical weights → identical choices whatever produced them).
        let w = zipf_weights(n, s);
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &x in &w {
            acc += x;
            cum.push(acc);
        }
        let grid = 20_000usize;
        let mut hits = vec![0usize; n];
        let mut prev = 0;
        for g in 0..grid {
            let u = (g as f64 + 0.5) / grid as f64;
            let i = sample_cumulative(&cum, u);
            prop_assert!(i >= prev, "index not monotone in u");
            prev = i;
            hits[i] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            let frac = h as f64 / grid as f64;
            prop_assert!(
                (frac - w[i]).abs() <= 1.0 / grid as f64 + 1e-9,
                "route {i}: hit fraction {frac} vs weight {}", w[i]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unit_arithmetic_matches_raw_f64(
        a in -1e12f64..1e12,
        b in -1e12f64..1e12,
        k in 0.001f64..1e6,
    ) {
        // The newtypes are zero-cost wrappers: every closed operation
        // must produce exactly the bits raw f64 arithmetic produces.
        prop_assert_eq!((Bytes(a) + Bytes(b)).get().to_bits(), (a + b).to_bits());
        prop_assert_eq!((Bytes(a) - Bytes(b)).get().to_bits(), (a - b).to_bits());
        prop_assert_eq!((Delay(a) * k).get().to_bits(), (a * k).to_bits());
        prop_assert_eq!((k * Delay(a)).get().to_bits(), (k * a).to_bits());
        prop_assert_eq!((BitsPerSec(a) / k).get().to_bits(), (a / k).to_bits());
        prop_assert_eq!((Bits(a) / Bits(b)).to_bits(), (a / b).to_bits());
        let mut acc = Bytes(a);
        acc += Bytes(b);
        acc -= Bytes(b);
        prop_assert_eq!(acc.get().to_bits(), ((a + b) - b).to_bits());
    }

    #[test]
    fn unit_ordering_follows_magnitude(
        a in -1e12f64..1e12,
        b in -1e12f64..1e12,
    ) {
        prop_assert_eq!(Delay(a) < Delay(b), a < b);
        prop_assert_eq!(Bytes(a) == Bytes(b), a == b);
        prop_assert_eq!(
            Bits(a).partial_cmp(&Bits(b)),
            a.partial_cmp(&b)
        );
    }

    #[test]
    fn unit_physics_round_trips(
        bytes in 1.0f64..1e9,
        rate in 1e3f64..1e12,
    ) {
        // bytes → bits → transmission time at `rate` → bits → bytes.
        // ×8 and ÷8 are exact in binary floating point, so only the
        // rate multiply/divide pair can round — one ulp-scale slack.
        let size = Bytes(bytes);
        let t: Delay = size.to_bits() / BitsPerSec(rate);
        let back = (BitsPerSec(rate) * t).to_bytes();
        prop_assert!(
            (back.get() - bytes).abs() <= 1e-12 * bytes,
            "round trip {bytes} B @ {rate} b/s came back {}", back.get()
        );
        // Commutativity of the bandwidth-delay product.
        prop_assert_eq!(
            (BitsPerSec(rate) * t).get().to_bits(),
            (t * BitsPerSec(rate)).get().to_bits()
        );
    }

    #[test]
    fn red_probability_bounded_and_monotone(
        min_th in 0.0f64..20.0,
        span in 0.1f64..50.0,
        max_p in 0.0f64..1.0,
        avg_lo in 0.0f64..100.0,
        step in 0.0f64..10.0,
    ) {
        let max_th = min_th + span;
        let p_lo = red_mark_probability(min_th, max_th, max_p, avg_lo);
        let p_hi = red_mark_probability(min_th, max_th, max_p, avg_lo + step);
        for p in [p_lo, p_hi] {
            prop_assert!((0.0..=max_p).contains(&p), "p {p} outside [0, {max_p}]");
        }
        prop_assert!(p_hi >= p_lo, "marking probability must be monotone in avg");
        prop_assert_eq!(red_mark_probability(min_th, max_th, max_p, min_th), 0.0);
        // At avg == max_th the linear ramp reaches max_p up to one
        // rounding of the (max_p · Δ) / Δ product pair.
        let at_max = red_mark_probability(min_th, max_th, max_p, max_th);
        prop_assert!(
            (at_max - max_p).abs() <= 1e-12 * max_p.max(1e-12),
            "ramp top {at_max} vs max_p {max_p}"
        );
    }

    #[test]
    fn red_ewma_trajectory_keeps_probability_in_range(
        weight in 0.001f64..1.0,
        max_p in 0.01f64..1.0,
        seed_raw in 0usize..10_000,
        qs in proptest::collection::vec(0usize..200, 1..120),
    ) {
        // Drive the real RedMark discipline along a random queue-length
        // trajectory: the EWMA must stay inside the hull of its inputs
        // (so it can never overshoot the worst queue it saw) and the
        // implied marking probability stays in [0, max_p] at every step.
        let params = QdiscParams::resolve(QdiscKind::RedMark {
            min_th: 2.5,
            max_th: 10.0,
            max_p,
            weight,
        });
        let mut state = [HopQdiscState::default()];
        let mut rng = StdRng::seed_from_u64(seed_raw as u64);
        let mut hull_max = 0.0f64;
        for (i, &q) in qs.iter().enumerate() {
            let t = i as f64 * 0.01;
            let _ = RedMark::mark(&params, &mut state, 0, t, q as u64, false, 1.0, &mut rng);
            hull_max = hull_max.max(q as f64);
            prop_assert!(
                state[0].red_avg >= 0.0 && state[0].red_avg <= hull_max + 1e-12,
                "EWMA {} escaped [0, {hull_max}]", state[0].red_avg
            );
            let p = red_mark_probability(params.min_th, params.max_th, params.max_p, state[0].red_avg);
            prop_assert!(
                (0.0..=max_p).contains(&p),
                "step {i}: p {p} outside [0, {max_p}]"
            );
        }
    }
}

proptest! {
    // Fewer cases: every case runs full DES horizons.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn degenerate_gilbert_elliott_matches_iid_statistics(
        seed_raw in 0usize..10_000,
        p in 0.05f64..0.30,
        rate in 0.5f64..2.0,
    ) {
        // DESIGN §3i: a Gilbert–Elliott fault with equal sojourn rates
        // and equal per-state loss is statistically an i.i.d. loss of
        // the same probability — the state machine flips, but the loss
        // drawn on every arrival is the same constant. The realisations
        // differ (GE consumes fault-lane draws from the shared stream),
        // so the pin is statistical: both arms' pooled drop fraction
        // must sit within binomial error of `p`, on a paced source with
        // deterministic service so `hop.loss` is the only packet-path
        // uniform.
        let seed = seed_raw as u64;
        let flows = vec![FlowSpec {
            source: SourceSpec::Rate {
                law: LinearExp::new(6.0, 0.5, 8.0),
                lambda0: 50.0,
                update_interval: 1e9, // never adapt: constant 50 pkt/s
                prop_delay: 0.01,
                poisson: false,
            },
            route: Route::single(0),
        }];
        let mk = |fault: FaultConfig| NetConfig {
            topology: Topology::uniform(1, Link {
                mu: 100.0,
                service: Service::Deterministic,
                buffer: None,
            }),
            faults: vec![fault],
            t_end: 40.0,
            warmup: 1.0,
            sample_interval: 0.5,
            seed,
            trace: TraceMode::Off,
            qdisc: QdiscKind::Fifo,
            packet_bytes: None,
        };
        let iid = run_network(&mk(FaultConfig::Iid { loss_prob: p }), &flows).unwrap();
        let ge = run_network(
            &mk(FaultConfig::GilbertElliott {
                p_gb: rate,
                p_bg: rate,
                loss_good: p,
                loss_bad: p,
            }),
            &flows,
        )
        .unwrap();
        for (name, r) in [("iid", &iid), ("ge", &ge)] {
            let (sent, dropped) = (r.flows[0].sent, r.flows[0].dropped);
            prop_assert!(sent > 1000, "{name}: paced source must emit the horizon");
            let frac = dropped as f64 / sent as f64;
            let tol = 4.0 * (p * (1.0 - p) / sent as f64).sqrt();
            prop_assert!(
                (frac - p).abs() <= tol,
                "{name}: drop fraction {frac} outside {p} ± {tol}"
            );
        }
    }

    #[test]
    fn linkflap_downtime_converges_to_stationary_fraction(
        seed_raw in 0usize..10_000,
        down_rate in 0.2f64..0.5,
        up_rate in 1.0f64..3.0,
    ) {
        // DESIGN §3i: the up/down renewal process spends a long-run
        // fraction down_rate / (up_rate + down_rate) of its time down.
        // Over ~60+ cycles and 3 seeds the measured post-warmup
        // downtime fraction must land within a generous CI of that.
        let expected = down_rate / (up_rate + down_rate);
        let flows = vec![FlowSpec {
            source: SourceSpec::Rate {
                law: LinearExp::new(6.0, 0.5, 8.0),
                lambda0: 1.0,
                update_interval: 1e9,
                prop_delay: 0.01,
                poisson: false,
            },
            route: Route::single(0),
        }];
        let mut mean = 0.0;
        const SEEDS: usize = 3;
        for k in 0..SEEDS {
            let cfg = NetConfig {
                topology: Topology::uniform(1, Link {
                    mu: 100.0,
                    service: Service::Deterministic,
                    buffer: None,
                }),
                faults: vec![FaultConfig::LinkFlap { up_rate, down_rate }],
                t_end: 400.0,
                warmup: 1.0,
                sample_interval: 1.0,
                seed: seed_raw as u64 + k as u64,
                trace: TraceMode::Off,
                qdisc: QdiscKind::Fifo,
                packet_bytes: None,
            };
            let r = run_network(&cfg, &flows).unwrap();
            prop_assert_eq!(r.downtime_frac.len(), 1);
            prop_assert!((0.0..=1.0).contains(&r.downtime_frac[0]));
            mean += r.downtime_frac[0] / SEEDS as f64;
        }
        let tol = 0.30 * expected + 0.02;
        prop_assert!(
            (mean - expected).abs() <= tol,
            "downtime fraction {mean} outside {expected} ± {tol}"
        );
    }
}

proptest! {
    #[test]
    fn rto_backoff_is_monotone_bounded_and_deterministic(
        rto_base in 1e-3f64..1.0,
        backoff in 1.0f64..4.0,
        max_retries_raw in 1usize..256,
    ) {
        // DESIGN §3i: the retransmission wait is a pure function of the
        // attempt number — rto_base on the first retry, growing
        // geometrically, finite over the whole 1..=255 budget, and
        // identical on every evaluation (the policy draws no RNG).
        let max_retries = max_retries_raw as u32;
        let policy = RtoPolicy { rto_base, backoff, max_retries };
        policy.validate().unwrap();
        prop_assert_eq!(policy.wait_before(1).to_bits(), rto_base.to_bits());
        let mut prev = 0.0f64;
        for attempt in 1..=max_retries {
            let w = policy.wait_before(attempt);
            prop_assert_eq!(w.to_bits(), policy.wait_before(attempt).to_bits());
            prop_assert!(w.is_finite() && w > 0.0, "attempt {attempt}: wait {w}");
            prop_assert!(w >= prev, "attempt {attempt}: {w} < {prev} not monotone");
            let closed_form = rto_base * backoff.powi(attempt as i32 - 1);
            prop_assert!(
                (w - closed_form).abs() <= 1e-12 * closed_form.max(1.0),
                "attempt {attempt}: {w} != closed form {closed_form}"
            );
            prev = w;
        }
        prop_assert!(policy.wait_before(255) <= rto_base * backoff.powi(254) * (1.0 + 1e-12));
    }
}
