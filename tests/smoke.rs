//! Fast smoke coverage of the two hot paths every future performance PR
//! will touch: the discrete-event simulator (`sim::run`, one test per
//! [`SourceSpec`] variant) and the Fokker–Planck stepper
//! (`FpSolver::run_until` mass conservation and positivity).
//!
//! Every test here runs a deliberately short horizon so the whole file
//! finishes in a few seconds even unoptimised; the long-horizon
//! cross-model statistics live in `tests/cross_model_agreement.rs`
//! (slowest ones behind `cargo test -- --ignored`, see `README.md`).

use fpk_repro::congestion::decbit::DecbitPolicy;
use fpk_repro::congestion::{LinearExp, WindowAimd};
use fpk_repro::fpk::{Density, FpProblem, FpSolver};
use fpk_repro::sim::{
    run, run_network, run_with_faults, FaultConfig, FlowSpec, Link, NetConfig, QdiscKind, Route,
    Service, SimConfig, SourceSpec, Topology, TraceMode,
};

fn short_config(seed: u64) -> SimConfig {
    SimConfig {
        mu: 50.0,
        service: Service::Exponential,
        buffer: None,
        t_end: 10.0,
        warmup: 2.0,
        sample_interval: 0.1,
        seed,
    }
}

fn check_result(out: &fpk_repro::sim::SimResult, n_flows: usize, what: &str) {
    assert_eq!(out.flows.len(), n_flows, "{what}: flow count");
    assert!(out.total_throughput > 0.0, "{what}: no packets delivered");
    assert!(out.mean_queue >= 0.0, "{what}: negative mean queue");
    assert!(
        (0.0..=1.5).contains(&out.utilization),
        "{what}: utilization {} out of range",
        out.utilization
    );
    assert!(!out.trace_t.is_empty(), "{what}: empty trace");
    assert!(
        out.trace_q.iter().all(|&q| q >= 0.0),
        "{what}: negative queue sample"
    );
}

#[test]
fn des_rate_source_smoke() {
    let out = run(
        &short_config(1),
        &[SourceSpec::Rate {
            law: LinearExp::new(8.0, 0.5, 10.0),
            lambda0: 20.0,
            update_interval: 0.1,
            prop_delay: 0.01,
            poisson: true,
        }],
    )
    .expect("rate run");
    check_result(&out, 1, "rate source");
    // The adaptive source must actually move its rate off λ0.
    let ctl: Vec<f64> = out.trace_ctl.iter().map(|c| c[0]).collect();
    assert!(
        ctl.iter().any(|&l| (l - 20.0).abs() > 1e-6),
        "rate never adapted"
    );
}

#[test]
fn des_rate_source_deterministic_gaps_smoke() {
    // Same variant, the `poisson: false` arm plus deterministic service.
    let mut cfg = short_config(2);
    cfg.service = Service::Deterministic;
    let out = run(
        &cfg,
        &[SourceSpec::Rate {
            law: LinearExp::new(8.0, 0.5, 10.0),
            lambda0: 20.0,
            update_interval: 0.1,
            prop_delay: 0.01,
            poisson: false,
        }],
    )
    .expect("deterministic rate run");
    check_result(&out, 1, "deterministic rate source");
}

#[test]
fn des_window_source_smoke() {
    let out = run(
        &short_config(3),
        &[SourceSpec::Window {
            aimd: WindowAimd::new(1.0, 0.5, 0.05, 10.0),
            w0: 2.0,
        }],
    )
    .expect("window run");
    check_result(&out, 1, "window source");
    // Windows stay positive and the slow-start from w0 = 2 grows.
    let peak = out.trace_ctl.iter().map(|c| c[0]).fold(f64::MIN, f64::max);
    assert!(peak > 2.0, "window never grew past w0 (peak {peak})");
}

#[test]
fn des_onoff_source_smoke() {
    let out = run(
        &short_config(4),
        &[SourceSpec::OnOff {
            peak_rate: 60.0,
            mean_on: 0.5,
            mean_off: 0.5,
            prop_delay: 0.01,
        }],
    )
    .expect("on-off run");
    check_result(&out, 1, "on-off source");
    // Mean rate ≈ peak/2 = 30 ≤ μ = 50: delivered load must be well
    // below capacity but clearly nonzero.
    assert!(out.utilization < 1.0, "on-off overloaded the bottleneck");
}

#[test]
fn des_decbit_source_smoke() {
    let out = run(
        &short_config(5),
        &[SourceSpec::Decbit {
            policy: DecbitPolicy::raja88(),
            rtt: 0.05,
            w0: 2.0,
            q_hat: 1.0,
        }],
    )
    .expect("decbit run");
    check_result(&out, 1, "DECbit source");
}

#[test]
fn des_mixed_sources_smoke() {
    // All four variants sharing one bottleneck in a single short run.
    let out = run(
        &short_config(6),
        &[
            SourceSpec::Rate {
                law: LinearExp::new(4.0, 0.5, 12.0),
                lambda0: 5.0,
                update_interval: 0.1,
                prop_delay: 0.01,
                poisson: true,
            },
            SourceSpec::Window {
                aimd: WindowAimd::new(1.0, 0.5, 0.05, 10.0),
                w0: 2.0,
            },
            SourceSpec::OnOff {
                peak_rate: 20.0,
                mean_on: 0.3,
                mean_off: 0.7,
                prop_delay: 0.01,
            },
            SourceSpec::Decbit {
                policy: DecbitPolicy::raja88(),
                rtt: 0.05,
                w0: 2.0,
                q_hat: 1.0,
            },
        ],
    )
    .expect("mixed run");
    check_result(&out, 4, "mixed sources");
    assert!(
        out.flows.iter().all(|f| f.throughput > 0.0),
        "every flow must deliver packets"
    );
}

/// Fault-injected variant of [`check_result`]: random link loss must be
/// visible in the drop counters while the flow still makes progress.
fn check_lossy_result(out: &fpk_repro::sim::SimResult, what: &str) {
    check_result(out, 1, what);
    assert!(
        out.flows[0].dropped > 0,
        "{what}: loss_prob > 0 must produce injected drops"
    );
    assert!(
        out.flows[0].delivered > 0,
        "{what}: flow must keep delivering under loss"
    );
}

#[test]
fn des_rate_source_with_loss_smoke() {
    // Rate flows simply lose the packet; the sent/dropped books must
    // reflect it and throughput stays positive.
    let out = run_with_faults(
        &short_config(31),
        &[SourceSpec::Rate {
            law: LinearExp::new(8.0, 0.5, 10.0),
            lambda0: 20.0,
            update_interval: 0.1,
            prop_delay: 0.01,
            poisson: true,
        }],
        &FaultConfig::Iid { loss_prob: 0.08 },
    )
    .expect("lossy rate run");
    check_lossy_result(&out, "lossy rate source");
    assert!(
        out.flows[0].sent > out.flows[0].delivered,
        "lost packets cannot be delivered"
    );
}

#[test]
fn des_window_source_with_loss_smoke() {
    // Window flows see drop-as-mark: every loss returns a marked ack, so
    // the flow stays ack-clocked and keeps making progress.
    let out = run_with_faults(
        &short_config(32),
        &[SourceSpec::Window {
            aimd: WindowAimd::new(1.0, 0.5, 0.05, 10.0),
            w0: 2.0,
        }],
        &FaultConfig::Iid { loss_prob: 0.08 },
    )
    .expect("lossy window run");
    check_lossy_result(&out, "lossy window source");
    // The marked acks must actually cut the window now and then, yet the
    // window can never fall below 1 — the flow never stalls.
    let windows: Vec<f64> = out.trace_ctl.iter().map(|c| c[0]).collect();
    assert!(windows.iter().all(|&w| w >= 1.0), "window fell below 1");
    assert!(
        windows.iter().any(|&w| w > 2.0),
        "window never grew despite ack-clocking"
    );
}

#[test]
fn des_onoff_source_with_loss_smoke() {
    let out = run_with_faults(
        &short_config(33),
        &[SourceSpec::OnOff {
            peak_rate: 60.0,
            mean_on: 0.5,
            mean_off: 0.5,
            prop_delay: 0.01,
        }],
        &FaultConfig::Iid { loss_prob: 0.08 },
    )
    .expect("lossy on-off run");
    check_lossy_result(&out, "lossy on-off source");
}

#[test]
fn des_decbit_source_with_loss_smoke() {
    let out = run_with_faults(
        &short_config(34),
        &[SourceSpec::Decbit {
            policy: DecbitPolicy::raja88(),
            rtt: 0.05,
            w0: 2.0,
            q_hat: 1.0,
        }],
        &FaultConfig::Iid { loss_prob: 0.08 },
    )
    .expect("lossy decbit run");
    check_lossy_result(&out, "lossy DECbit source");
    let windows: Vec<f64> = out.trace_ctl.iter().map(|c| c[0]).collect();
    assert!(
        windows.iter().all(|&w| w >= 1.0),
        "DECbit window fell below 1 under drop-as-mark"
    );
}

#[test]
fn des_mixed_sources_with_loss_smoke() {
    // All four variants under the same lossy bottleneck: every flow must
    // record drops *and* keep delivering.
    let out = run_with_faults(
        &short_config(35),
        &[
            SourceSpec::Rate {
                law: LinearExp::new(4.0, 0.5, 12.0),
                lambda0: 5.0,
                update_interval: 0.1,
                prop_delay: 0.01,
                poisson: true,
            },
            SourceSpec::Window {
                aimd: WindowAimd::new(1.0, 0.5, 0.05, 10.0),
                w0: 2.0,
            },
            SourceSpec::OnOff {
                peak_rate: 20.0,
                mean_on: 0.3,
                mean_off: 0.7,
                prop_delay: 0.01,
            },
            SourceSpec::Decbit {
                policy: DecbitPolicy::raja88(),
                rtt: 0.05,
                w0: 2.0,
                q_hat: 1.0,
            },
        ],
        &FaultConfig::Iid { loss_prob: 0.08 },
    )
    .expect("lossy mixed run");
    check_result(&out, 4, "lossy mixed sources");
    for (i, f) in out.flows.iter().enumerate() {
        assert!(f.dropped > 0, "flow {i} saw no injected drops");
        assert!(f.delivered > 0, "flow {i} stalled under loss");
    }
}

#[test]
fn des_network_parking_lot_rate_sources_smoke() {
    // The scenario the pre-topology API could not express: rate-based
    // JRJ sources on a 3-hop parking lot with heterogeneous per-hop μ
    // and loss injected at one hop only. Short horizon — this is the
    // smoke twin of `examples/multihop_tandem.rs` part 4.
    let jrj = |route: Route| FlowSpec {
        source: SourceSpec::Rate {
            law: LinearExp::new(8.0, 0.5, 10.0),
            lambda0: 20.0,
            update_interval: 0.1,
            prop_delay: 0.01,
            poisson: true,
        },
        route,
    };
    // Infinite buffers so the *only* drop source is the injected loss
    // at hop 1 — that keeps the per-hop bookkeeping assertions sharp.
    let link = |mu: f64| Link {
        mu,
        service: Service::Exponential,
        buffer: None,
    };
    let net = NetConfig {
        topology: Topology {
            links: vec![link(90.0), link(60.0), link(120.0)],
        },
        faults: vec![
            FaultConfig::Iid { loss_prob: 0.0 },
            FaultConfig::Iid { loss_prob: 0.05 },
            FaultConfig::Iid { loss_prob: 0.0 },
        ],
        t_end: 15.0,
        warmup: 3.0,
        sample_interval: 0.1,
        seed: 41,
        trace: TraceMode::Full,
        qdisc: QdiscKind::Fifo,
        packet_bytes: None,
    };
    let flows = vec![
        jrj(Route::full(3)),
        jrj(Route::single(0)),
        jrj(Route::single(1)),
        jrj(Route::single(2)),
    ];
    let out = run_network(&net, &flows).expect("parking lot run");
    assert_eq!(out.flows.len(), 4);
    assert_eq!(out.trace_q.len(), 3, "one queue trace per hop");
    assert_eq!(out.mean_queue.len(), 3);
    assert!(
        out.flows.iter().all(|f| f.delivered > 0),
        "every flow must make progress"
    );
    assert_eq!(out.flows[0].hops, 3);
    // Loss lives only at hop 1: the hop-0 and hop-2 cross flows must
    // stay clean while the long flow and the hop-1 flow record drops.
    assert_eq!(out.flows[1].dropped, 0, "hop 0 is lossless");
    assert_eq!(out.flows[3].dropped, 0, "hop 2 is lossless");
    assert!(
        out.flows[0].dropped + out.flows[2].dropped > 0,
        "the lossy middle hop must be visible in the books"
    );
    assert!(out.utilization.iter().all(|&u| (0.0..=1.5).contains(&u)));
}

#[test]
fn fp_solver_conserves_mass_and_positivity() {
    let law = LinearExp::new(1.0, 0.5, 10.0);
    let grid = Density::standard_grid(30.0, -5.0, 5.0, 48, 32).expect("grid");
    let init = Density::gaussian(grid, 8.0, -1.0, 1.0, 0.5).expect("init");
    let mut solver = FpSolver::new(FpProblem::new(law, 5.0, 0.3), init).expect("solver");
    solver.run_until(0.5).expect("run");
    let d = solver.density();
    assert!(
        (d.mass() - 1.0).abs() < 1e-9,
        "mass drifted to {}",
        d.mass()
    );
    assert!(
        d.min_value() >= -1e-12,
        "negative density {}",
        d.min_value()
    );
    assert!(d.mean_q().is_finite() && d.mean_nu().is_finite());
}

#[test]
fn fp_solver_zero_noise_transport_stays_sane() {
    // σ² = 0: the hyperbolic limit exercises the pure advection path.
    let law = LinearExp::new(1.0, 0.5, 10.0);
    let grid = Density::standard_grid(30.0, -5.0, 5.0, 48, 32).expect("grid");
    let init = Density::gaussian(grid, 8.0, 1.0, 1.0, 0.5).expect("init");
    let mut solver = FpSolver::new(FpProblem::new(law, 5.0, 0.0), init).expect("solver");
    solver.run_until(0.3).expect("run");
    let d = solver.density();
    assert!((d.mass() - 1.0).abs() < 1e-9, "mass {}", d.mass());
    assert!(d.min_value() >= -1e-12, "negative density");
    // With ν0 = +1 the bulk must have moved to larger q.
    assert!(
        d.mean_q() > 8.0,
        "advection went the wrong way: {}",
        d.mean_q()
    );
}

#[test]
fn fp_solver_repeated_short_steps_match_single_run() {
    // run_until must compose: many short calls agree with one long call
    // up to the step-size truncation error (each call ends on a partial
    // CFL step, so agreement is first-order in dt, not exact), and mass
    // stays pinned either way.
    let law = LinearExp::new(1.0, 0.5, 10.0);
    let grid = Density::standard_grid(30.0, -5.0, 5.0, 40, 24).expect("grid");
    let init = Density::gaussian(grid, 8.0, -1.0, 1.0, 0.5).expect("init");

    let mut one = FpSolver::new(FpProblem::new(law, 5.0, 0.2), init.clone()).expect("solver");
    one.run_until(0.4).expect("run");

    let mut many = FpSolver::new(FpProblem::new(law, 5.0, 0.2), init).expect("solver");
    for k in 1..=8 {
        many.run_until(0.05 * k as f64).expect("run");
    }
    assert!(
        (one.density().mean_q() - many.density().mean_q()).abs() < 5e-3,
        "single {} vs composed {}",
        one.density().mean_q(),
        many.density().mean_q()
    );
    assert!((one.density().mass() - many.density().mass()).abs() < 1e-12);
}
