//! Golden-value regression tests.
//!
//! Re-computes the core numbers behind `tbl1_theorem1` (return-map
//! contraction factors) and `tbl3_fair_share`/`tbl4_hetero_share`
//! (sliding-mode shares) through the public library API and pins them to
//! checked-in expected values. Future refactors of the theory or
//! numerics layers must reproduce these to the stated tolerances; a
//! deliberate behaviour change must update the constants in the same
//! commit (run `cargo test --test golden_tables -- --ignored --nocapture`
//! to print freshly computed values in copy-pasteable form).

use fpk_repro::congestion::fairness::jain_index;
use fpk_repro::congestion::theory::{sliding_duty_cycle, sliding_share, ReturnMap};
use fpk_repro::congestion::LinearExp;

/// Relative tolerance for quantities produced by closed-form expressions
/// plus (at worst) a scalar root find.
const RTOL: f64 = 1e-6;

fn assert_close(actual: f64, expected: f64, rtol: f64, what: &str) {
    let scale = expected.abs().max(1e-12);
    assert!(
        (actual - expected).abs() <= rtol * scale,
        "{what}: got {actual:.12e}, golden {expected:.12e} (rtol {rtol:.1e})"
    );
}

/// The `tbl1_theorem1` parameter sweep: (C0, C1, q̂, μ, λ0).
const TBL1_CASES: [(f64, f64, f64, f64, f64); 7] = [
    (1.0, 0.5, 10.0, 5.0, 0.5),
    (1.0, 0.5, 10.0, 5.0, 4.5),
    (0.5, 3.0, 5.0, 8.0, 1.0),
    (2.0, 0.05, 20.0, 3.0, 0.5),
    (0.2, 0.5, 0.5, 5.0, 0.0), // hits the q = 0 boundary
    (5.0, 1.0, 2.0, 10.0, 2.0),
    (0.05, 0.05, 50.0, 1.0, 0.1),
];

/// Golden outputs per tbl1 case, in case order:
/// (contraction factor at λ0, λ after 3 revolutions, cycles to 1% defect).
const TBL1_GOLDEN: [(f64, f64, usize); 7] = [
    (6.174048229881e-1, 3.409422182144e0, 149),
    (9.374755799499e-1, 4.583359057093e0, 135),
    (2.691399853925e-1, 6.566864662573e0, 145),
    (6.383055546715e-1, 2.069230392960e0, 149),
    (8.440791429966e-2, 4.620664475539e0, 134),
    (4.299500710719e-1, 7.644543092095e0, 147),
    (6.197364660820e-1, 6.812041365059e-1, 149),
];

/// Golden cycle geometry for the workspace's standard law
/// (C0 = 1, C1 = 0.5, q̂ = 10, μ = 5) from λ0 = 1.5:
/// (λ_next, t_up, t_down, q_min, q_peak, λ_peak).
const TBL1_CYCLE_GOLDEN: (f64, f64, f64, f64, f64, f64) = (
    2.624918585949e0, // λ_next
    7.000000000000e0, // t_up
    2.350032565620e0, // t_down
    3.875000000000e0, // q_min
    1.169371748938e1, // q_peak
    8.500000000000e0, // λ_peak
);

/// The heterogeneous sliding-mode scenario: (C0, C1) per source, q̂ = 10.
const TBL3_HETERO: [(f64, f64); 4] = [(1.0, 0.5), (3.0, 0.5), (2.0, 1.0), (0.5, 0.25)];
const TBL3_MU: f64 = 10.0;

/// Golden sliding-mode shares for [`TBL3_HETERO`] at μ = 10
/// (`λ_i* = μ · (C0_i/C1_i) / Σ_j (C0_j/C1_j)`).
const TBL3_SHARE_GOLDEN: [f64; 4] = [
    1.666666666667e0,
    5.000000000000e0,
    1.666666666667e0,
    1.666666666667e0,
];

/// Golden duty cycle (fraction of time on the increase branch): μ/(μ+S).
const TBL3_DUTY_GOLDEN: f64 = 4.545454545455e-1;

fn tbl1_values() -> Vec<(f64, f64, usize)> {
    TBL1_CASES
        .iter()
        .map(|&(c0, c1, q_hat, mu, lambda0)| {
            let map = ReturnMap::new(LinearExp::new(c0, c1, q_hat), mu).expect("map");
            let contraction = map.contraction(lambda0).expect("contraction");
            let lambda3 = *map
                .iterate(lambda0, 3)
                .expect("iterate")
                .last()
                .expect("nonempty");
            let cycles = map
                .cycles_to_converge(lambda0, 1e-2, 1_000_000)
                .expect("cycles")
                .expect("must converge");
            (contraction, lambda3, cycles)
        })
        .collect()
}

fn tbl1_cycle_value() -> (f64, f64, f64, f64, f64, f64) {
    let map = ReturnMap::new(LinearExp::new(1.0, 0.5, 10.0), 5.0).expect("map");
    let c = map.cycle(1.5).expect("cycle");
    (
        c.lambda_next,
        c.t_up,
        c.t_down,
        c.q_min,
        c.q_peak,
        c.lambda_peak,
    )
}

fn tbl3_values() -> (Vec<f64>, f64) {
    let laws: Vec<LinearExp> = TBL3_HETERO
        .iter()
        .map(|&(c0, c1)| LinearExp::new(c0, c1, 10.0))
        .collect();
    (
        sliding_share(&laws, TBL3_MU).expect("shares"),
        sliding_duty_cycle(&laws, TBL3_MU).expect("duty"),
    )
}

#[test]
fn tbl1_contraction_factors_match_golden() {
    for (k, ((contraction, lambda3, cycles), &(gc, gl, gn))) in tbl1_values()
        .into_iter()
        .zip(TBL1_GOLDEN.iter())
        .enumerate()
    {
        assert!(
            contraction > 0.0 && contraction < 1.0,
            "case {k}: factor {contraction} outside (0, 1) — Theorem 1 broken"
        );
        assert_close(contraction, gc, RTOL, &format!("case {k} contraction"));
        assert_close(
            lambda3,
            gl,
            RTOL,
            &format!("case {k} lambda after 3 revolutions"),
        );
        assert_eq!(cycles, gn, "case {k}: cycles to 1% defect");
    }
}

#[test]
fn tbl1_cycle_geometry_matches_golden() {
    let (ln, tu, td, qmin, qpeak, lpeak) = tbl1_cycle_value();
    let (gln, gtu, gtd, gqmin, gqpeak, glpeak) = TBL1_CYCLE_GOLDEN;
    assert_close(ln, gln, RTOL, "lambda_next");
    assert_close(tu, gtu, RTOL, "t_up");
    assert_close(td, gtd, RTOL, "t_down");
    assert_close(qmin, gqmin, RTOL, "q_min");
    assert_close(qpeak, gqpeak, RTOL, "q_peak");
    assert_close(lpeak, glpeak, RTOL, "lambda_peak");
}

#[test]
fn tbl3_sliding_shares_match_golden() {
    let (shares, duty) = tbl3_values();
    assert_eq!(shares.len(), TBL3_SHARE_GOLDEN.len());
    for (k, (s, &g)) in shares.iter().zip(TBL3_SHARE_GOLDEN.iter()).enumerate() {
        assert_close(*s, g, RTOL, &format!("source {k} share"));
    }
    // Invariants behind the golden numbers, stated independently so a
    // wrong regeneration cannot silently pin nonsense: shares sum to μ
    // and order like C0/C1.
    let total: f64 = shares.iter().sum();
    assert_close(total, TBL3_MU, 1e-12, "share total");
    assert_close(duty, TBL3_DUTY_GOLDEN, RTOL, "duty cycle");
}

#[test]
fn tbl3_equal_sources_share_equally() {
    // The equal-parameter rows of tbl3: shares are exactly μ/N and the
    // Jain index is exactly 1 — closed-form, so pin to tight tolerance.
    for n in [2usize, 3, 4, 6, 8] {
        let laws = vec![LinearExp::new(1.0, 0.5, 10.0); n];
        let shares = sliding_share(&laws, TBL3_MU).expect("shares");
        for s in &shares {
            assert_close(
                *s,
                TBL3_MU / n as f64,
                1e-12,
                &format!("equal share, N={n}"),
            );
        }
        let jain = jain_index(&shares).expect("jain");
        assert_close(jain, 1.0, 1e-12, &format!("Jain index, N={n}"));
    }
}

/// Prints the freshly computed values in the exact constant syntax above.
/// Run: `cargo test --test golden_tables -- --ignored --nocapture`
#[test]
#[ignore = "regeneration helper, not a check"]
fn regenerate_golden_values() {
    println!("const TBL1_GOLDEN: [(f64, f64, usize); 7] = [");
    for (c, l, n) in tbl1_values() {
        println!("    ({c:.12e}, {l:.12e}, {n}),");
    }
    println!("];");
    let (ln, tu, td, qmin, qpeak, lpeak) = tbl1_cycle_value();
    println!(
        "const TBL1_CYCLE_GOLDEN: (f64, f64, f64, f64, f64, f64) =\n    \
         ({ln:.12e}, {tu:.12e}, {td:.12e}, {qmin:.12e}, {qpeak:.12e}, {lpeak:.12e});"
    );
    let (shares, duty) = tbl3_values();
    println!("const TBL3_SHARE_GOLDEN: [f64; 4] = [");
    for s in shares {
        println!("    {s:.12e},");
    }
    println!("];");
    println!("const TBL3_DUTY_GOLDEN: f64 = {duty:.12e};");
}
